// Tests for the yoso_serve stack (src/serve): wire protocol, job queue
// scheduling, the kJobState codec, and the end-to-end serving guarantee —
// a daemon job's result is byte-identical to running the same search
// in-process against the same artifact (docs/SERVING.md).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/artifact.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/serialize.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace yoso {
namespace serve {
namespace {

// --- Protocol ---------------------------------------------------------------

TEST(Protocol, ParseDumpRoundTrip) {
  const std::string text =
      R"({"op":"submit","job":{"iterations":40,"priority":-2,)"
      R"("searcher":"random"},"tag":"a\nb"})";
  const std::optional<JsonValue> v = parse_json(text);
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->get("job"), nullptr);
  EXPECT_EQ(v->get("op")->string_or(""), "submit");
  EXPECT_EQ(v->get("job")->get("iterations")->number_or(0), 40.0);
  EXPECT_EQ(v->get("job")->get("priority")->number_or(0), -2.0);
  EXPECT_EQ(v->get("tag")->string_or(""), "a\nb");
  // dump() emits sorted keys, so responses are byte-stable; a reparse of
  // the dump dumps identically (fixpoint).
  const std::string dumped = v->dump();
  const std::optional<JsonValue> again = parse_json(dumped);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), dumped);
}

TEST(Protocol, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":01}", &error).has_value());
  // Depth bomb: fails cleanly instead of blowing the stack.
  EXPECT_FALSE(parse_json(std::string(200, '[') + std::string(200, ']'),
                          &error)
                   .has_value());
}

// --- Job queue scheduling ---------------------------------------------------

JobSpec spec_with(int priority, std::uint64_t seed = 7) {
  JobSpec spec;
  spec.searcher = "random";
  spec.iterations = 10;
  spec.priority = priority;
  spec.seed = seed;
  return spec;
}

TEST(JobQueueTest, PriorityOrderWithFifoTies) {
  JobQueue queue;
  queue.pause();  // make the submission batch atomic w.r.t. the consumer
  const std::uint64_t low = queue.submit(spec_with(0));
  const std::uint64_t high_a = queue.submit(spec_with(5));
  const std::uint64_t mid = queue.submit(spec_with(2));
  const std::uint64_t high_b = queue.submit(spec_with(5));
  queue.resume();

  // Highest priority first; equal priorities drain FIFO (lower id first).
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    const std::optional<JobRecord> job = queue.acquire_next();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::kRunning);
    order.push_back(job->id);
    queue.complete(job->id, {});
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{high_a, high_b, mid, low}));
  queue.wait_idle();  // returns: nothing queued or running
}

TEST(JobQueueTest, CancelIsQueueOnly) {
  JobQueue queue;
  queue.pause();
  const std::uint64_t id = queue.submit(spec_with(0));
  queue.resume();
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.get(id)->state, JobState::kCancelled);
  EXPECT_FALSE(queue.cancel(id));      // already cancelled
  EXPECT_FALSE(queue.cancel(999));     // unknown id

  const std::uint64_t running = queue.submit(spec_with(0));
  const std::optional<JobRecord> job = queue.acquire_next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, running);
  EXPECT_FALSE(queue.cancel(running));  // running jobs finish
  queue.fail(running, "boom");
  EXPECT_EQ(queue.get(running)->state, JobState::kFailed);
  EXPECT_EQ(queue.get(running)->error, "boom");
}

TEST(JobQueueTest, RestoreRequeuesRunningAndKeepsIdsAhead) {
  JobQueue queue;
  JobRecord done;
  done.id = 3;
  done.state = JobState::kDone;
  done.outcome.has_best = true;
  done.outcome.best_candidate = "x";
  JobRecord interrupted;
  interrupted.id = 5;
  interrupted.state = JobState::kRunning;  // daemon died mid-job
  interrupted.spec = spec_with(1);
  queue.restore(done);
  queue.restore(interrupted);

  EXPECT_EQ(queue.get(3)->state, JobState::kDone);
  EXPECT_EQ(queue.get(3)->outcome.best_candidate, "x");
  EXPECT_EQ(queue.get(5)->state, JobState::kQueued);  // re-queued for replay
  EXPECT_EQ(queue.submit(spec_with(0)), 6u);  // counter moved past max id
}

TEST(JobQueueTest, StoppedQueueDrainsToNullopt) {
  JobQueue queue;
  queue.submit(spec_with(0));
  queue.stop();
  EXPECT_FALSE(queue.acquire_next().has_value());
}

// --- Admission + job-state codec --------------------------------------------

TEST(ValidJobSpecTest, Rejections) {
  std::string why;
  EXPECT_TRUE(valid_job_spec(JobSpec{}, &why));
  JobSpec bad_searcher;
  bad_searcher.searcher = "anneal";
  EXPECT_FALSE(valid_job_spec(bad_searcher, &why));
  EXPECT_NE(why.find("searcher"), std::string::npos);
  JobSpec bad_reward;
  bad_reward.reward = "throughput";
  EXPECT_FALSE(valid_job_spec(bad_reward, &why));
  JobSpec zero_iter;
  zero_iter.iterations = 0;
  EXPECT_FALSE(valid_job_spec(zero_iter, &why));
  EXPECT_FALSE(valid_job_spec(zero_iter, nullptr));  // error out is optional
}

TEST(JobStateCodec, RoundTrip) {
  JobRecord a;
  a.id = 2;
  a.spec = spec_with(4, 99);
  a.spec.reward = "energy";
  a.spec.t_lat_ms = 1.5;
  a.state = JobState::kDone;
  a.outcome.has_best = true;
  a.outcome.best_candidate = "cand";
  a.outcome.best_reward = -0.25;
  a.outcome.iterations_run = 10;
  a.outcome.finalists = 3;
  JobRecord b;
  b.id = 7;
  b.state = JobState::kFailed;
  b.error = "sim exploded";

  ByteWriter w;
  encode_job_state(w, 8, {a, b});
  ByteReader r(w.bytes());
  std::uint64_t next_id = 0;
  const std::vector<JobRecord> records = decode_job_state(r, &next_id);
  EXPECT_EQ(next_id, 8u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 2u);
  EXPECT_EQ(records[0].spec.priority, 4);
  EXPECT_EQ(records[0].spec.seed, 99u);
  EXPECT_EQ(records[0].spec.reward, "energy");
  EXPECT_EQ(records[0].spec.t_lat_ms, 1.5);
  EXPECT_EQ(records[0].state, JobState::kDone);
  EXPECT_TRUE(records[0].outcome.has_best);
  EXPECT_EQ(records[0].outcome.best_candidate, "cand");
  EXPECT_EQ(records[0].outcome.best_reward, -0.25);
  EXPECT_EQ(records[1].state, JobState::kFailed);
  EXPECT_EQ(records[1].error, "sim exploded");

  // Truncated section → ContractViolation, never garbage records.
  ByteReader cut(w.bytes().first(w.bytes().size() - 4));
  std::uint64_t ignored = 0;
  EXPECT_THROW(decode_job_state(cut, &ignored), ContractViolation);
}

// --- End-to-end serving -----------------------------------------------------

// Minimal blocking line client for the AF_UNIX protocol socket.
class LineClient {
 public:
  explicit LineClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) {
    return fd_ >= 0 && ::send(fd_, data.data(), data.size(), 0) ==
                           static_cast<ssize_t>(data.size());
  }

  std::optional<JsonValue> request(const std::string& line) {
    if (!send_raw(line + "\n")) return std::nullopt;
    const std::optional<std::string> response = read_until("\n");
    if (!response.has_value()) return std::nullopt;
    return parse_json(*response);
  }

  std::optional<std::string> read_until(const std::string& stop) {
    std::string buffer;
    char chunk[4096];
    while (buffer.find(stop) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) return std::nullopt;
      if (n == 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return buffer;
  }

 private:
  int fd_ = -1;
};

class ServeIntegration : public ::testing::Test {
 protected:
  // One trained artifact shared by every test in the suite (Step 1 is the
  // expensive part; the tests exercise serving, not training).
  static void SetUpTestSuite() {
    artifact_path_ = std::make_unique<std::string>(
        ::testing::TempDir() + "serve_test_artifact.bin");
    DesignSpace space;
    const NetworkSkeleton skeleton = default_skeleton();
    SystolicSimulator simulator({}, SimFidelity::kAnalytical);
    const FastEvaluator trained(space, skeleton, simulator,
                                {.predictor_samples = 150, .seed = 13});
    save_fast_evaluator(*artifact_path_, trained, "test_serve");
  }
  static void TearDownTestSuite() {
    std::remove(artifact_path_->c_str());
    artifact_path_.reset();
  }

  static const std::string& artifact() { return *artifact_path_; }

  // The reference result: the same search run in-process on a fresh
  // evaluator restored from the same artifact.
  static SearchResult reference_run(const JobSpec& spec) {
    DesignSpace space;
    SearchOptions opts;
    opts.iterations = spec.iterations;
    opts.batch_size = spec.batch_size;
    opts.top_n = spec.top_n;
    opts.seed = spec.seed;
    opts.trace_every = 0;
    opts.reward = balanced_reward();
    FastEvaluator fast =
        make_fast_evaluator(load_fast_evaluator_artifact(artifact()));
    if (spec.searcher == "rl")
      return YosoSearch(space, opts).run(fast, nullptr);
    return RandomSearchDriver(space, opts).run(fast, nullptr);
  }

  static std::unique_ptr<std::string> artifact_path_;
};

std::unique_ptr<std::string> ServeIntegration::artifact_path_;

TEST_F(ServeIntegration, PrioritizedJobsOverSocketByteStable) {
  const std::string socket_path = ::testing::TempDir() + "serve_test.sock";
  SearchService service(artifact(), {.start_paused = true});
  SearchServer server(service, socket_path);

  LineClient client(socket_path);
  ASSERT_TRUE(client.ok());

  // Three jobs, deliberately submitted in non-priority order.
  const char* submits[] = {
      R"({"op":"submit","job":{"searcher":"random","iterations":30,)"
      R"("seed":3,"priority":0}})",
      R"({"op":"submit","job":{"searcher":"random","iterations":30,)"
      R"("seed":4,"priority":5}})",
      R"({"op":"submit","job":{"searcher":"rl","iterations":30,)"
      R"("seed":5,"priority":2}})",
  };
  std::vector<std::uint64_t> ids;
  for (const char* line : submits) {
    const std::optional<JsonValue> response = client.request(line);
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->get("ok")->bool_or(false)) << response->dump();
    ids.push_back(static_cast<std::uint64_t>(
        response->get("job_id")->number_or(0)));
  }
  ASSERT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));

  // Paused: everything sits queued.
  const std::optional<JsonValue> queued =
      client.request(R"({"op":"status","job_id":2})");
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->get("job")->get("state")->string_or(""), "queued");

  // A result request for an unfinished job is an error, not a block.
  const std::optional<JsonValue> early =
      client.request(R"({"op":"result","job_id":2})");
  ASSERT_TRUE(early.has_value());
  EXPECT_FALSE(early->get("ok")->bool_or(true));

  ASSERT_TRUE(client.request(R"({"op":"resume"})").has_value());
  service.wait_idle();

  // Every job completed, and each result is byte-identical to the same
  // search run in-process against the same artifact.
  JobSpec specs[3];
  specs[0] = spec_with(0, 3);
  specs[1] = spec_with(5, 4);
  specs[2] = spec_with(2, 5);
  specs[0].iterations = specs[1].iterations = specs[2].iterations = 30;
  specs[2].searcher = "rl";
  specs[0].top_n = specs[1].top_n = specs[2].top_n = 5;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::optional<JsonValue> response = client.request(
        R"({"op":"result","job_id":)" + std::to_string(ids[i]) + "}");
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->get("ok")->bool_or(false)) << response->dump();
    const JsonValue* best = response->get("result")->get("best");
    ASSERT_NE(best, nullptr);

    const SearchResult expected = reference_run(specs[i]);
    ASSERT_TRUE(expected.best.has_value());
    EXPECT_EQ(best->get("candidate")->string_or(""),
              serialize_candidate(expected.best->candidate));
    EXPECT_EQ(best->get("reward")->number_or(0),
              expected.best->accurate_reward);
    EXPECT_EQ(best->get("accuracy")->number_or(0),
              expected.best->accurate_result.accuracy);
    EXPECT_EQ(best->get("latency_ms")->number_or(0),
              expected.best->accurate_result.latency_ms);
    EXPECT_EQ(best->get("energy_mj")->number_or(0),
              expected.best->accurate_result.energy_mj);
  }

  // Scrape /metrics on a SECOND connection while the first is still open
  // (regression: connection serving must not be single-file) and require
  // the serve.* surface to be live.
  LineClient scraper(socket_path);
  ASSERT_TRUE(scraper.ok());
  ASSERT_TRUE(scraper.send_raw("GET /metrics HTTP/1.0\n"));
  // The endpoint writes one response and closes; read to EOF (the stop
  // token cannot occur in a text exposition).
  const std::optional<std::string> exposition = scraper.read_until("\x01");
  ASSERT_TRUE(exposition.has_value());
  EXPECT_NE(exposition->find("HTTP/1.0 200 OK"), std::string::npos);
  for (const char* needle :
       {"serve.jobs_submitted", "serve.jobs_completed", "serve.queue_depth",
        "serve.jobs_active", "serve.requests", "serve.batch_occupancy_count"})
    EXPECT_NE(exposition->find(needle), std::string::npos) << needle;

  server.stop();
  service.stop();
  std::remove(socket_path.c_str());
}

TEST_F(ServeIntegration, DispatchErrorPathsAndCancel) {
  SearchService service(artifact(), {.start_paused = true});
  SearchServer server(service,
                      ::testing::TempDir() + "serve_test_dispatch.sock");

  const auto dispatch = [&server](const std::string& line) {
    const std::optional<JsonValue> v = parse_json(server.dispatch_line(line));
    EXPECT_TRUE(v.has_value());
    return *v;
  };
  EXPECT_FALSE(dispatch("not json").get("ok")->bool_or(true));
  EXPECT_FALSE(dispatch(R"({"no_op":1})").get("ok")->bool_or(true));
  EXPECT_FALSE(dispatch(R"({"op":"warp"})").get("ok")->bool_or(true));
  EXPECT_FALSE(dispatch(R"({"op":"status"})").get("ok")->bool_or(true));
  EXPECT_FALSE(dispatch(R"({"op":"status","job_id":42})")
                   .get("ok")
                   ->bool_or(true));
  // Admission rejects a bad spec before it reaches the queue.
  EXPECT_FALSE(
      dispatch(R"({"op":"submit","job":{"searcher":"anneal"}})")
          .get("ok")
          ->bool_or(true));

  const JsonValue submitted = dispatch(
      R"({"op":"submit","job":{"searcher":"random","iterations":10}})");
  ASSERT_TRUE(submitted.get("ok")->bool_or(false));
  const std::uint64_t id = static_cast<std::uint64_t>(
      submitted.get("job_id")->number_or(0));
  EXPECT_TRUE(dispatch(R"({"op":"cancel","job_id":)" + std::to_string(id) +
                       "}")
                  .get("ok")
                  ->bool_or(false));
  const JsonValue after = dispatch(R"({"op":"result","job_id":)" +
                                   std::to_string(id) + "}");
  EXPECT_FALSE(after.get("ok")->bool_or(true));

  server.stop();
  service.stop();
}

TEST_F(ServeIntegration, SnapshotResumeReplaysQueuedJobs) {
  const std::string snapshot_path =
      ::testing::TempDir() + "serve_test_snapshot.bin";
  JobSpec spec_a = spec_with(0, 17);
  spec_a.iterations = 20;
  JobSpec spec_b = spec_with(3, 18);
  spec_b.iterations = 20;

  // Service 1: queue two jobs, snapshot while still paused, then run them.
  JobOutcome first_a;
  JobOutcome first_b;
  {
    SearchService service(artifact(), {.start_paused = true});
    const std::uint64_t id_a = service.submit(spec_a);
    const std::uint64_t id_b = service.submit(spec_b);
    service.snapshot_to(snapshot_path);
    service.resume();
    service.wait_idle();
    first_a = service.jobs().get(id_a)->outcome;
    first_b = service.jobs().get(id_b)->outcome;
    ASSERT_TRUE(first_a.has_best);
    ASSERT_TRUE(first_b.has_best);
    service.stop();
  }

  // Service 2 on the snapshot: the queued jobs replay from their seeds to
  // byte-identical outcomes, ids preserved.
  {
    SearchService service(snapshot_path, {});
    service.wait_idle();
    const std::optional<JobRecord> replay_a = service.jobs().get(1);
    const std::optional<JobRecord> replay_b = service.jobs().get(2);
    ASSERT_TRUE(replay_a.has_value());
    ASSERT_TRUE(replay_b.has_value());
    EXPECT_EQ(replay_a->state, JobState::kDone);
    EXPECT_EQ(replay_b->state, JobState::kDone);
    EXPECT_EQ(replay_a->outcome.best_candidate, first_a.best_candidate);
    EXPECT_EQ(replay_a->outcome.best_reward, first_a.best_reward);
    EXPECT_EQ(replay_b->outcome.best_candidate, first_b.best_candidate);
    EXPECT_EQ(replay_b->outcome.best_reward, first_b.best_reward);
    EXPECT_EQ(service.submit(spec_a), 3u);  // id counter survived
    service.wait_idle();
    service.stop();
  }
  std::remove(snapshot_path.c_str());
}

TEST_F(ServeIntegration, CorruptArtifactRefusedAtStartup) {
  const std::string bad_path = ::testing::TempDir() + "serve_test_bad.bin";
  {
    std::ifstream in(artifact(), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x5A;
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(SearchService(bad_path, {}), ContractViolation);
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace yoso
