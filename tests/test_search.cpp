#include <gtest/gtest.h>
#include <memory>

#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"

namespace yoso {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    SystolicSimulator sim({}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<FastEvaluator>(*space_, *skeleton_, sim,
                              FastEvaluatorOptions{.predictor_samples = 150, .seed = 9});
    accurate_ = std::make_unique<AccurateEvaluator>(
        *skeleton_, SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    fast_.reset();
    skeleton_.reset();
    space_.reset();
  }

  static SearchOptions small_options(std::size_t iters) {
    SearchOptions opt;
    opt.iterations = iters;
    opt.top_n = 5;
    opt.trace_every = 10;
    opt.reward = balanced_reward();
    opt.seed = 13;
    return opt;
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<FastEvaluator> fast_;
  static std::unique_ptr<AccurateEvaluator> accurate_;
};

std::unique_ptr<DesignSpace> SearchTest::space_;
std::unique_ptr<NetworkSkeleton> SearchTest::skeleton_;
std::unique_ptr<FastEvaluator> SearchTest::fast_;
std::unique_ptr<AccurateEvaluator> SearchTest::accurate_;

TEST_F(SearchTest, ProducesTraceFinalistsAndBest) {
  YosoSearch search(*space_, small_options(120));
  const SearchResult r = search.run(*fast_, accurate_.get());
  EXPECT_EQ(r.iterations_run, 120u);
  EXPECT_EQ(r.trace.size(), 12u);  // every 10th
  EXPECT_FALSE(r.finalists.empty());
  EXPECT_LE(r.finalists.size(), 5u);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.best_fast_reward, 0.0);
}

TEST_F(SearchTest, TraceIterationsAscend) {
  YosoSearch search(*space_, small_options(100));
  const SearchResult r = search.run(*fast_, nullptr);
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_LT(r.trace[i - 1].iteration, r.trace[i].iteration);
}

TEST_F(SearchTest, FinalistsSortedByAccurateReward) {
  YosoSearch search(*space_, small_options(150));
  const SearchResult r = search.run(*fast_, accurate_.get());
  for (std::size_t i = 1; i < r.finalists.size(); ++i)
    EXPECT_GE(r.finalists[i - 1].accurate_reward,
              r.finalists[i].accurate_reward);
}

TEST_F(SearchTest, FinalistsAreDistinct) {
  YosoSearch search(*space_, small_options(200));
  const SearchResult r = search.run(*fast_, nullptr);
  for (std::size_t i = 0; i < r.finalists.size(); ++i)
    for (std::size_t j = i + 1; j < r.finalists.size(); ++j)
      EXPECT_FALSE(r.finalists[i].candidate == r.finalists[j].candidate);
}

TEST_F(SearchTest, BestIsFeasibleWhenAnyFinalistIs) {
  YosoSearch search(*space_, small_options(200));
  const SearchResult r = search.run(*fast_, accurate_.get());
  ASSERT_TRUE(r.best.has_value());
  bool any_feasible = false;
  for (const auto& f : r.finalists) any_feasible |= f.feasible;
  if (any_feasible) {
    EXPECT_TRUE(r.best->feasible);
  }
}

TEST_F(SearchTest, WithoutAccurateEvaluatorKeepsFastScores) {
  YosoSearch search(*space_, small_options(80));
  const SearchResult r = search.run(*fast_, nullptr);
  for (const auto& f : r.finalists) {
    EXPECT_DOUBLE_EQ(f.accurate_result.energy_mj, f.fast_result.energy_mj);
    EXPECT_DOUBLE_EQ(f.accurate_reward,
                     small_options(1).reward.compute(f.fast_result));
  }
}

TEST_F(SearchTest, DeterministicForSameSeed) {
  YosoSearch s1(*space_, small_options(60));
  YosoSearch s2(*space_, small_options(60));
  const SearchResult r1 = s1.run(*fast_, nullptr);
  const SearchResult r2 = s2.run(*fast_, nullptr);
  EXPECT_DOUBLE_EQ(r1.best_fast_reward, r2.best_fast_reward);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.trace[i].reward, r2.trace[i].reward);
}

TEST_F(SearchTest, RandomSearchDriverSameInterface) {
  RandomSearchDriver driver(*space_, small_options(100));
  const SearchResult r = driver.run(*fast_, accurate_.get());
  EXPECT_EQ(r.iterations_run, 100u);
  EXPECT_FALSE(r.finalists.empty());
  ASSERT_TRUE(r.best.has_value());
}

TEST_F(SearchTest, RlBeatsRandomOnLateRewards) {
  // The Fig-6(a) property at miniature scale: with the same budget the RL
  // searcher's late-phase rewards exceed random search's.
  SearchOptions opt = small_options(800);
  opt.trace_every = 5;
  YosoSearch rl(*space_, opt);
  RandomSearchDriver random(*space_, opt);
  const SearchResult rr = rl.run(*fast_, nullptr);
  const SearchResult rd = random.run(*fast_, nullptr);
  auto tail_mean = [](const SearchResult& r) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = r.trace.size() * 3 / 4; i < r.trace.size(); ++i) {
      acc += r.trace[i].reward;
      ++n;
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_GT(tail_mean(rr), tail_mean(rd));
}

TEST(SearchOptionsValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(SearchOptions{}.validate());
}

TEST(SearchOptionsValidate, RejectsZeroBatchSize) {
  SearchOptions opt;
  opt.batch_size = 0;
  EXPECT_THROW(opt.validate(), ContractViolation);
}

TEST(SearchOptionsValidate, RejectsZeroIterations) {
  SearchOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(opt.validate(), ContractViolation);
}

TEST(SearchOptionsValidate, RejectsZeroTopN) {
  SearchOptions opt;
  opt.top_n = 0;
  EXPECT_THROW(opt.validate(), ContractViolation);
}

TEST(SearchOptionsValidate, RunRejectsBadOptionsBeforeTouchingEvaluators) {
  // Every driver funnels through SearchDriver::run(), which validates
  // before proposing anything — the CLI relies on this for its usage error.
  DesignSpace space;
  SearchOptions opt;
  opt.batch_size = 0;
  class NeverCalled : public Evaluator {
   public:
    EvalResult evaluate(const CandidateDesign&) override {
      ADD_FAILURE() << "evaluate() reached despite invalid options";
      return {};
    }
  } evaluator;
  EXPECT_THROW(RandomSearchDriver(space, opt).run(evaluator, nullptr),
               ContractViolation);
}

TEST(RerankFinalists, OrdersAndMarksFeasibility) {
  SearchResult r;
  RankedCandidate a, b;
  a.fast_reward = 1.0;
  a.fast_result = {0.9, 0.5, 4.0};  // feasible
  b.fast_reward = 2.0;
  b.fast_result = {0.9, 5.0, 40.0};  // infeasible but higher fast reward
  r.finalists = {b, a};
  rerank_finalists(r, balanced_reward(), nullptr);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.best->feasible);
  EXPECT_DOUBLE_EQ(r.best->fast_result.latency_ms, 0.5);
}

TEST(RerankFinalists, FallsBackWhenNothingFeasible) {
  SearchResult r;
  RankedCandidate a;
  a.fast_result = {0.9, 5.0, 40.0};
  r.finalists = {a};
  rerank_finalists(r, balanced_reward(), nullptr);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_FALSE(r.best->feasible);
}

}  // namespace
}  // namespace yoso
