#include <gtest/gtest.h>
#include <map>

#include "nn/dataset.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(SynthCifar, GeneratesBalancedLabelledSet) {
  SynthCifar task(12, 10, 7);
  const Dataset ds = task.generate(5, 1);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.images.shape(), (std::vector<int>{50, 3, 12, 12}));
  std::map<int, int> counts;
  for (int l : ds.labels) ++counts[l];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [label, count] : counts) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
    EXPECT_EQ(count, 5);
  }
}

TEST(SynthCifar, PixelsInRange) {
  SynthCifar task(8, 4, 3);
  const Dataset ds = task.generate(10, 2);
  for (float v : ds.images.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SynthCifar, DeterministicForSameSeeds) {
  SynthCifar a(10, 6, 11), b(10, 6, 11);
  const Dataset da = a.generate(4, 5);
  const Dataset db = b.generate(4, 5);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.images.numel(); ++i)
    EXPECT_FLOAT_EQ(da.images[i], db.images[i]);
  EXPECT_EQ(da.labels, db.labels);
}

TEST(SynthCifar, DifferentDrawSeedsDiffer) {
  SynthCifar task(10, 6, 11);
  const Dataset d1 = task.generate(4, 1);
  const Dataset d2 = task.generate(4, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < d1.images.numel(); ++i)
    any_diff |= d1.images[i] != d2.images[i];
  EXPECT_TRUE(any_diff);
}

TEST(SynthCifar, ClassesAreSeparable) {
  // Mean within-class distance should be smaller than between-class
  // distance — otherwise no model could learn the task.
  SynthCifar task(12, 4, 17);
  const Dataset ds = task.generate(20, 3);
  const int hw = 12 * 12 * 3;
  auto dist = [&](int i, int j) {
    double acc = 0.0;
    for (int k = 0; k < hw; ++k) {
      const double d = ds.images[static_cast<std::size_t>(i * hw + k)] -
                       ds.images[static_cast<std::size_t>(j * hw + k)];
      acc += d * d;
    }
    return acc;
  };
  double within = 0.0, between = 0.0;
  int nw = 0, nb = 0;
  for (int i = 0; i < 40; ++i) {
    for (int j = i + 1; j < 40; ++j) {
      if (ds.labels[static_cast<std::size_t>(i)] ==
          ds.labels[static_cast<std::size_t>(j)]) {
        within += dist(i, j);
        ++nw;
      } else {
        between += dist(i, j);
        ++nb;
      }
    }
  }
  EXPECT_LT(within / nw, between / nb);
}

TEST(SynthCifar, InvalidConstructionThrows) {
  EXPECT_THROW(SynthCifar(2, 10, 1), std::invalid_argument);
  EXPECT_THROW(SynthCifar(12, 1, 1), std::invalid_argument);
  SynthCifar ok(12, 10, 1);
  EXPECT_THROW(ok.generate(0, 1), std::invalid_argument);
}

TEST(GatherBatch, CollectsRowsAndLabels) {
  SynthCifar task(8, 4, 19);
  const Dataset ds = task.generate(4, 1);
  std::vector<std::size_t> idx = {0, 5, 9};
  std::vector<int> labels;
  const Tensor batch = gather_batch(ds, idx, &labels);
  EXPECT_EQ(batch.dim(0), 3);
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[1], ds.labels[5]);
  for (int c = 0; c < 3; ++c)
    EXPECT_FLOAT_EQ(batch.at(1, c, 2, 3), ds.images.at(5, c, 2, 3));
}

TEST(GatherBatch, Errors) {
  SynthCifar task(8, 4, 19);
  const Dataset ds = task.generate(2, 1);
  std::vector<std::size_t> empty;
  EXPECT_THROW(gather_batch(ds, empty, nullptr), std::invalid_argument);
  std::vector<std::size_t> oob = {999};
  EXPECT_THROW(gather_batch(ds, oob, nullptr), std::out_of_range);
}

TEST(AugmentBatch, PreservesShapeAndRange) {
  SynthCifar task(8, 4, 23);
  const Dataset ds = task.generate(4, 1);
  std::vector<std::size_t> idx = {0, 1, 2, 3};
  Tensor batch = gather_batch(ds, idx, nullptr);
  const auto shape = batch.shape();
  Rng rng(5);
  augment_batch(batch, rng);
  EXPECT_EQ(batch.shape(), shape);
  for (float v : batch.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(AugmentBatch, ActuallyPerturbsSomeImages) {
  SynthCifar task(8, 4, 29);
  const Dataset ds = task.generate(8, 1);
  std::vector<std::size_t> idx = {0, 1, 2, 3, 4, 5, 6, 7};
  Tensor original = gather_batch(ds, idx, nullptr);
  Tensor batch = original;
  Rng rng(6);
  augment_batch(batch, rng);
  bool any_diff = false;
  for (std::size_t i = 0; i < batch.numel(); ++i)
    any_diff |= batch[i] != original[i];
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace yoso
