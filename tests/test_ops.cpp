#include "arch/ops.h"

#include <gtest/gtest.h>

namespace yoso {
namespace {

TEST(Ops, KernelSizes) {
  EXPECT_EQ(op_kernel_size(Op::kConv3x3), 3);
  EXPECT_EQ(op_kernel_size(Op::kConv5x5), 5);
  EXPECT_EQ(op_kernel_size(Op::kDwConv3x3), 3);
  EXPECT_EQ(op_kernel_size(Op::kDwConv5x5), 5);
  EXPECT_EQ(op_kernel_size(Op::kMaxPool3x3), 3);
  EXPECT_EQ(op_kernel_size(Op::kAvgPool3x3), 3);
}

TEST(Ops, Classification) {
  EXPECT_TRUE(op_is_conv(Op::kConv3x3));
  EXPECT_TRUE(op_is_conv(Op::kConv5x5));
  EXPECT_FALSE(op_is_conv(Op::kDwConv3x3));
  EXPECT_TRUE(op_is_depthwise(Op::kDwConv5x5));
  EXPECT_FALSE(op_is_depthwise(Op::kMaxPool3x3));
  EXPECT_TRUE(op_is_pool(Op::kAvgPool3x3));
  EXPECT_FALSE(op_is_pool(Op::kConv5x5));
}

TEST(Ops, ExactlyOneCategoryPerOp) {
  for (Op op : all_ops()) {
    const int categories = (op_is_conv(op) ? 1 : 0) +
                           (op_is_depthwise(op) ? 1 : 0) +
                           (op_is_pool(op) ? 1 : 0);
    EXPECT_EQ(categories, 1) << op_name(op);
  }
}

TEST(Ops, WeightsOnlyForConvs) {
  EXPECT_TRUE(op_has_weights(Op::kConv3x3));
  EXPECT_TRUE(op_has_weights(Op::kDwConv5x5));
  EXPECT_FALSE(op_has_weights(Op::kMaxPool3x3));
  EXPECT_FALSE(op_has_weights(Op::kAvgPool3x3));
}

TEST(Ops, NameRoundTrip) {
  for (Op op : all_ops()) EXPECT_EQ(op_from_name(op_name(op)), op);
}

TEST(Ops, UnknownNameThrows) {
  EXPECT_THROW(op_from_name("conv7x7"), std::invalid_argument);
}

TEST(Ops, SixOps) {
  EXPECT_EQ(kNumOps, 6);
  EXPECT_EQ(all_ops().size(), 6u);
}

}  // namespace
}  // namespace yoso
