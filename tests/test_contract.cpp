#include "util/contract.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/zoo.h"
#include "core/reward.h"
#include "predictor/gp.h"

namespace yoso {
namespace {

TEST(Contract, RequirePassesSilently) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return std::string("ctx");
  };
  YOSO_REQUIRE(1 + 1 == 2, "never built: ", count());
  // Message arguments must not be evaluated on the passing path.
  EXPECT_EQ(evaluations, 0);
}

TEST(Contract, ViolationCarriesStructuredContext) {
  try {
    YOSO_REQUIRE(2 < 1, "got ", 42, " while expecting < ", 1);
    FAIL() << "YOSO_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.expression(), "2 < 1");
    EXPECT_NE(e.file().find("test_contract.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_EQ(e.message(), "got 42 while expecting < 1");
    const std::string what = e.what();
    EXPECT_NE(what.find("(2 < 1)"), std::string::npos);
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos);
    EXPECT_NE(what.find("got 42 while expecting < 1"), std::string::npos);
  }
}

TEST(Contract, MessageIsOptional) {
  try {
    YOSO_CHECK(false);
    FAIL() << "YOSO_CHECK did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_TRUE(e.message().empty());
    EXPECT_NE(std::string(e.what()).find("contract violation"),
              std::string::npos);
  }
}

TEST(Contract, ViolationIsCatchableAsInvalidArgument) {
  // Pre-contract call sites catch std::invalid_argument / std::logic_error;
  // the hierarchy keeps both working.
  EXPECT_THROW(YOSO_REQUIRE(false, "compat"), std::invalid_argument);
  EXPECT_THROW(YOSO_REQUIRE(false, "compat"), std::logic_error);
}

TEST(Contract, DcheckMatchesBuildType) {
#if !defined(NDEBUG) || defined(YOSO_ENABLE_DCHECKS)
  EXPECT_THROW(YOSO_DCHECK(false, "debug build checks"), ContractViolation);
#else
  // Release: compiled out entirely — the condition must not even run.
  int evaluations = 0;
  // The macro discards its arguments in this configuration, so keep the
  // probe referenced explicitly.
  [[maybe_unused]] auto probe = [&] {
    ++evaluations;
    return false;
  };
  YOSO_DCHECK(probe(), "release build is a no-op");
  EXPECT_EQ(evaluations, 0);
#endif
}

AcceleratorConfig base_config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

std::vector<Layer> reference_layers() {
  return extract_layers(reference_model("Darts_v2").genotype,
                        default_skeleton());
}

TEST(Contract, SimulatorRejectsInvalidBatch) {
  const SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const std::vector<Layer> layers = reference_layers();
  try {
    sim.simulate(layers, base_config(), 0);
    FAIL() << "batch=0 accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(e.message().find("batch=0"), std::string::npos);
  }
}

TEST(Contract, SimulatorRejectsDegenerateArray) {
  const SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const std::vector<Layer> layers = reference_layers();
  AcceleratorConfig config = base_config();
  config.pe_rows = 0;
  EXPECT_THROW(sim.simulate(layers, config), ContractViolation);
}

TEST(Contract, RewardRejectsNonFiniteAccuracy) {
  const RewardParams params = balanced_reward();
  EvalResult r;
  r.accuracy = std::numeric_limits<double>::quiet_NaN();
  r.latency_ms = 1.0;
  r.energy_mj = 1.0;
  EXPECT_THROW(params.compute(r), ContractViolation);
}

TEST(Contract, GpPredictRejectsDimensionMismatch) {
  GpRegressor gp;
  const Matrix x = Matrix::from_rows({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.5}});
  const std::vector<double> y = {0.0, 1.0, 2.0};
  gp.fit(x, y);
  try {
    gp.predict(std::vector<double>{0.5});
    FAIL() << "dimension mismatch accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(e.message().find("feature dimension 1"), std::string::npos);
    EXPECT_NE(e.message().find("fitted dimension 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace yoso
