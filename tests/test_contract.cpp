#include <gtest/gtest.h>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "arch/zoo.h"
#include "base/contract.h"
#include "core/extended_space.h"
#include "core/reward.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "nn/im2col.h"
#include "nn/metrics.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

TEST(Contract, RequirePassesSilently) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return std::string("ctx");
  };
  YOSO_REQUIRE(1 + 1 == 2, "never built: ", count());
  // Message arguments must not be evaluated on the passing path.
  EXPECT_EQ(evaluations, 0);
}

TEST(Contract, ViolationCarriesStructuredContext) {
  try {
    YOSO_REQUIRE(2 < 1, "got ", 42, " while expecting < ", 1);
    FAIL() << "YOSO_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.expression(), "2 < 1");
    EXPECT_NE(e.file().find("test_contract.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_EQ(e.message(), "got 42 while expecting < 1");
    const std::string what = e.what();
    EXPECT_NE(what.find("(2 < 1)"), std::string::npos);
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos);
    EXPECT_NE(what.find("got 42 while expecting < 1"), std::string::npos);
  }
}

TEST(Contract, MessageIsOptional) {
  try {
    YOSO_CHECK(false);
    FAIL() << "YOSO_CHECK did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_TRUE(e.message().empty());
    EXPECT_NE(std::string(e.what()).find("contract violation"),
              std::string::npos);
  }
}

TEST(Contract, ViolationIsCatchableAsInvalidArgument) {
  // Pre-contract call sites catch std::invalid_argument / std::logic_error;
  // the hierarchy keeps both working.
  EXPECT_THROW(YOSO_REQUIRE(false, "compat"), std::invalid_argument);
  EXPECT_THROW(YOSO_REQUIRE(false, "compat"), std::logic_error);
}

TEST(Contract, DcheckMatchesBuildType) {
#if !defined(NDEBUG) || defined(YOSO_ENABLE_DCHECKS)
  EXPECT_THROW(YOSO_DCHECK(false, "debug build checks"), ContractViolation);
#else
  // Release: compiled out entirely — the condition must not even run.
  int evaluations = 0;
  // The macro discards its arguments in this configuration, so keep the
  // probe referenced explicitly.
  [[maybe_unused]] auto probe = [&] {
    ++evaluations;
    return false;
  };
  YOSO_DCHECK(probe(), "release build is a no-op");
  EXPECT_EQ(evaluations, 0);
#endif
}

AcceleratorConfig base_config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

std::vector<Layer> reference_layers() {
  return extract_layers(reference_model("Darts_v2").genotype,
                        default_skeleton());
}

TEST(Contract, SimulatorRejectsInvalidBatch) {
  const SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const std::vector<Layer> layers = reference_layers();
  try {
    sim.simulate(layers, base_config(), 0);
    FAIL() << "batch=0 accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(e.message().find("batch=0"), std::string::npos);
  }
}

TEST(Contract, SimulatorRejectsDegenerateArray) {
  const SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const std::vector<Layer> layers = reference_layers();
  AcceleratorConfig config = base_config();
  config.pe_rows = 0;
  EXPECT_THROW(sim.simulate(layers, config), ContractViolation);
}

TEST(Contract, RewardRejectsNonFiniteAccuracy) {
  const RewardParams params = balanced_reward();
  EvalResult r;
  r.accuracy = std::numeric_limits<double>::quiet_NaN();
  r.latency_ms = 1.0;
  r.energy_mj = 1.0;
  EXPECT_THROW(params.compute(r), ContractViolation);
}

TEST(Contract, GpPredictRejectsDimensionMismatch) {
  GpRegressor gp;
  const Matrix x = Matrix::from_rows({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.5}});
  const std::vector<double> y = {0.0, 1.0, 2.0};
  gp.fit(x, y);
  try {
    gp.predict(std::vector<double>{0.5});
    FAIL() << "dimension mismatch accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(e.message().find("feature dimension 1"), std::string::npos);
    EXPECT_NE(e.message().find("fitted dimension 2"), std::string::npos);
  }
}


// ---------------------------------------------------------------------------
// Guards the contract-coverage lint rule (tools/yoso_lint.py) forced into
// public entry points: every YOSO_REQUIRE/YOSO_CHECK it added gets a
// violation case here.  (LstmController::step_forward and
// GpRegressor::predict_rows also gained guards, but both are private
// methods whose public callers always pass in-range arguments.)

TEST(ContractCoverage, ThreadPoolRejectsAbsurdWorkerCount) {
  EXPECT_THROW(ThreadPool pool(2048), ContractViolation);
}

TEST(ContractCoverage, Im2colRejectsNonPositiveKernelOrStride) {
  const Tensor x({1, 1, 4, 4});
  EXPECT_THROW(im2col(x, 0, 1), ContractViolation);
  EXPECT_THROW(im2col(x, 3, 0), ContractViolation);
}

TEST(ContractCoverage, Col2imRejectsNonPositiveKernelOrStride) {
  const ColMatrix cols;
  EXPECT_THROW(col2im(cols, {1, 1, 4, 4}, 0, 1), ContractViolation);
  EXPECT_THROW(col2im(cols, {1, 1, 4, 4}, 3, 0), ContractViolation);
}

TEST(ContractCoverage, ConfusionMatrixAtIsBoundsChecked) {
  ConfusionMatrix cm(3);
  EXPECT_THROW(cm.at(3, 0), ContractViolation);
  EXPECT_THROW(cm.at(0, -1), ContractViolation);
  EXPECT_EQ(cm.at(2, 2), 0);
}

TEST(ContractCoverage, HistogramBucketIsBoundsChecked) {
  const std::vector<double> bounds = {1.0, 2.0};
  obs::Histogram h{std::span<const double>(bounds)};  // 3 buckets
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_THROW(h.bucket(3), ContractViolation);
}

TEST(ContractCoverage, GemvRejectsNullOperands) {
  const double a[4] = {1.0, 2.0, 3.0, 4.0};
  const double x[2] = {1.0, 1.0};
  EXPECT_THROW(kernels::gemv(a, x, nullptr, 2, 2), ContractViolation);
}

TEST(ContractCoverage, SgemmAbtRejectsOverflowingPanel) {
  const float a[1] = {0.0f};
  const float b[1] = {0.0f};
  float c[1] = {0.0f};
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(kernels::sgemm_abt(a, b, c, 1, huge, 3), ContractViolation);
}

TEST(ContractCoverage, PackRowsRejectsOverflowingPanel) {
  const double src[1] = {0.0};
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(kernels::pack_rows(src, huge, 3), ContractViolation);
}

TEST(ContractCoverage, GpPredictMeansPairRejectsNullOutput) {
  GpRegressor gp;
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}, {2.0}});
  const std::vector<double> y = {0.0, 1.0, 2.0};
  gp.fit(x, y);
  const double xq[1] = {0.5};
  EXPECT_THROW(GpRegressor::predict_means_pair(gp, gp, xq, 1, nullptr,
                                               nullptr, nullptr),
               ContractViolation);
}

TEST(ContractCoverage, CodesignFeaturesIntoRejectsNullOutput) {
  const ArchFeatures af;
  const AcceleratorConfig config;
  EXPECT_THROW(codesign_features_into(af, config, nullptr),
               ContractViolation);
}

TEST(ContractCoverage, PredictBatchRejectsNullOutputs) {
  PerformancePredictor predictor(default_skeleton());
  const double features[1] = {0.0};
  EXPECT_THROW(predictor.predict_latency_energy_batch(features, 1, nullptr,
                                                      nullptr, nullptr),
               ContractViolation);
}

TEST(ContractCoverage, SkeletonForRejectsOutOfRangeIndices) {
  const ExtendedDesignSpace space;
  EXPECT_THROW(space.skeleton_for(-1, 0), ContractViolation);
  EXPECT_THROW(space.skeleton_for(0, 99), ContractViolation);
}

TEST(ContractCoverage, ExtendedFastEvaluatorRejectsZeroSamples) {
  const ExtendedDesignSpace space;
  const SystolicSimulator sim({}, SimFidelity::kAnalytical);
  EXPECT_THROW(ExtendedFastEvaluator(space, sim, 0, 7), ContractViolation);
}

#if !defined(NDEBUG) || defined(YOSO_ENABLE_DCHECKS)
TEST(ContractCoverage, TensorAtIsBoundsCheckedInDebug) {
  Tensor t({1, 1, 2, 2});
  EXPECT_THROW(t.at(0, 0, 2, 0), ContractViolation);
  EXPECT_THROW(t.at(-1, 0, 0, 0), ContractViolation);
}
#endif

}  // namespace
}  // namespace yoso
