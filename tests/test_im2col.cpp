#include <gtest/gtest.h>

#include "nn/im2col.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(Im2col, ShapesAndPaddingZeros) {
  Rng rng(1);
  const Tensor x = random_tensor({2, 3, 5, 5}, rng);
  const ColMatrix m = im2col(x, 3, 1);
  EXPECT_EQ(m.rows, 2 * 5 * 5);
  EXPECT_EQ(m.cols, 3 * 9);
  // Top-left output pixel of image 0: the (kh=0, kw=0) tap is out of image
  // and must be zero; the centre tap equals x(0, ci, 0, 0).
  for (int ci = 0; ci < 3; ++ci) {
    EXPECT_FLOAT_EQ(m.data[static_cast<std::size_t>(ci * 9 + 0)], 0.0f);
    EXPECT_FLOAT_EQ(m.data[static_cast<std::size_t>(ci * 9 + 4)],
                    x.at(0, ci, 0, 0));
  }
}

TEST(Im2col, StrideTwoRowCount) {
  Rng rng(2);
  const Tensor x = random_tensor({1, 2, 7, 7}, rng);
  const ColMatrix m = im2col(x, 3, 2);
  EXPECT_EQ(m.rows, 4 * 4);  // ceil(7/2) = 4
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property of an adjoint pair, which is exactly what backward needs.
  Rng rng(3);
  const Tensor x = random_tensor({2, 2, 4, 4}, rng);
  const ColMatrix cx = im2col(x, 3, 1);
  ColMatrix y;
  y.rows = cx.rows;
  y.cols = cx.cols;
  y.data.resize(cx.data.size());
  for (float& v : y.data) v = static_cast<float>(rng.normal(0.0, 1.0));

  double lhs = 0.0;
  for (std::size_t i = 0; i < cx.data.size(); ++i)
    lhs += static_cast<double>(cx.data[i]) * y.data[i];
  const Tensor xt = col2im(y, x.shape(), 3, 1);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, Col2imRejectsMismatchedShapes) {
  ColMatrix y;
  y.rows = 4;
  y.cols = 9;
  y.data.resize(36);
  EXPECT_THROW(col2im(y, {1, 1, 5, 5}, 3, 1), std::invalid_argument);
}

TEST(Matmul, AbtKnownValues) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]]: A*B^T = [[17,23],[39,53]].
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  matmul_abt(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 17.0f);
  EXPECT_FLOAT_EQ(c[1], 23.0f);
  EXPECT_FLOAT_EQ(c[2], 39.0f);
  EXPECT_FLOAT_EQ(c[3], 53.0f);
}

TEST(Matmul, AbKnownValues) {
  // A (2x2) * B (2x2): [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]].
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  matmul_ab(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Matmul, AtbAccumulates) {
  // A^T*B with A (2x1) = [1;2], B (2x2) = [[1,0],[0,1]]: A^T B = [1, 2].
  const float a[] = {1, 2};
  const float b[] = {1, 0, 0, 1};
  float c[2] = {10.0f, 20.0f};  // must accumulate on top
  matmul_atb_acc(a, b, c, 2, 1, 2);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
}

TEST(Im2col, LoweredConvMatchesNaiveReference) {
  // Cross-check the whole lowered pipeline against a fresh naive conv.
  Rng rng(4);
  const int cin = 3, cout = 4, k = 3, hw = 6;
  const Tensor x = random_tensor({2, cin, hw, hw}, rng);
  const Tensor w = random_tensor({cout, cin, k, k}, rng);

  // Naive reference.
  Tensor ref({2, cout, hw, hw});
  for (int b = 0; b < 2; ++b)
    for (int co = 0; co < cout; ++co)
      for (int yy = 0; yy < hw; ++yy)
        for (int xx = 0; xx < hw; ++xx) {
          float acc = 0.0f;
          for (int ci = 0; ci < cin; ++ci)
            for (int kh = 0; kh < k; ++kh)
              for (int kw = 0; kw < k; ++kw) {
                const int ih = yy + kh - 1, iw = xx + kw - 1;
                if (ih < 0 || ih >= hw || iw < 0 || iw >= hw) continue;
                acc += x.at(b, ci, ih, iw) * w.at(co, ci, kh, kw);
              }
          ref.at(b, co, yy, xx) = acc;
        }

  // Lowered.
  const ColMatrix cols = im2col(x, k, 1);
  std::vector<float> out(static_cast<std::size_t>(cols.rows) * cout);
  matmul_abt(cols.data.data(), w.data().data(), out.data(), cols.rows, cout,
             cols.cols);
  for (int b = 0; b < 2; ++b)
    for (int yy = 0; yy < hw; ++yy)
      for (int xx = 0; xx < hw; ++xx)
        for (int co = 0; co < cout; ++co)
          EXPECT_NEAR(out[(static_cast<std::size_t>(b) * hw * hw + yy * hw +
                           xx) * cout + co],
                      ref.at(b, co, yy, xx), 1e-4f);
}

}  // namespace
}  // namespace yoso
