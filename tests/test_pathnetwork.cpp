#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "arch/network.h"
#include "nn/dataset.h"
#include "nn/module.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

Tensor random_images(int n, int hw, Rng& rng) {
  Tensor t({n, 3, hw, hw});
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 0.5));
  return t;
}

TEST(PathNetwork, LogitsShape) {
  Rng rng(1);
  PathNetwork net(tiny_skeleton(8, 4), 11);
  const Genotype g = random_genotype(rng);
  const Tensor logits = net.forward(g, random_images(3, 8, rng));
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 10);
  net.clear_cache();
}

TEST(PathNetwork, EmptySkeletonThrows) {
  NetworkSkeleton s = tiny_skeleton();
  s.cells.clear();
  EXPECT_THROW(PathNetwork(s, 1), std::invalid_argument);
}

TEST(PathNetwork, DeterministicForSameSeed) {
  Rng rng(2);
  const Genotype g = random_genotype(rng);
  Rng img_rng(3);
  const Tensor images = random_images(2, 8, img_rng);
  PathNetwork a(tiny_skeleton(8, 4), 42);
  PathNetwork b(tiny_skeleton(8, 4), 42);
  const Tensor ya = a.forward(g, images);
  const Tensor yb = b.forward(g, images);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(PathNetwork, DifferentPathsDifferentLogits) {
  Rng rng(4);
  PathNetwork net(tiny_skeleton(8, 4), 7);
  Rng img_rng(5);
  const Tensor images = random_images(2, 8, img_rng);
  const Genotype g1 = random_genotype(rng);
  const Genotype g2 = random_genotype(rng);
  ASSERT_FALSE(g1 == g2);
  const Tensor y1 = net.forward(g1, images);
  const Tensor y2 = net.forward(g2, images);
  net.clear_cache();
  bool any_diff = false;
  for (std::size_t i = 0; i < y1.numel(); ++i)
    any_diff |= y1[i] != y2[i];
  EXPECT_TRUE(any_diff);
}

TEST(PathNetwork, BackwardWithoutForwardThrows) {
  PathNetwork net(tiny_skeleton(8, 4), 7);
  EXPECT_THROW(net.backward(Tensor({1, 10})), std::logic_error);
}

TEST(PathNetwork, ParamCountGrowsLazily) {
  Rng rng(6);
  PathNetwork net(tiny_skeleton(8, 4), 7);
  const std::size_t initial = net.param_count();  // stem only
  EXPECT_GT(initial, 0u);
  Rng img_rng(8);
  net.forward(random_genotype(rng), random_images(1, 8, img_rng));
  net.clear_cache();
  const std::size_t after = net.param_count();
  EXPECT_GT(after, initial);
  net.forward(random_genotype(rng), random_images(1, 8, img_rng));
  net.clear_cache();
  EXPECT_GE(net.param_count(), after);
}

TEST(PathNetwork, EvaluateReturnsFractionInRange) {
  Rng rng(9);
  PathNetwork net(tiny_skeleton(8, 4), 7);
  Dataset ds;
  Rng img_rng(10);
  ds.images = random_images(20, 8, img_rng);
  for (int i = 0; i < 20; ++i) ds.labels.push_back(i % 10);
  const double acc = net.evaluate(random_genotype(rng), ds, 8);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(PathNetwork, EvaluateMaxBatchesLimitsWork) {
  Rng rng(11);
  PathNetwork net(tiny_skeleton(8, 4), 7);
  Dataset ds;
  Rng img_rng(12);
  ds.images = random_images(40, 8, img_rng);
  for (int i = 0; i < 40; ++i) ds.labels.push_back(i % 10);
  // Only sanity: runs and returns a valid fraction.
  const double acc = net.evaluate(random_genotype(rng), ds, 8, 2);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(PathNetwork, TrainingStepReducesLossOnFixedBatch) {
  Rng rng(13);
  const Genotype g = random_genotype(rng);
  PathNetwork net(tiny_skeleton(8, 6), 21);
  Rng img_rng(14);
  const Tensor images = random_images(8, 8, img_rng);
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % 10);

  SgdOptimizer opt(0.9, 0.0);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 20; ++step) {
    const Tensor logits = net.forward(g, images);
    Tensor grad;
    const double loss = softmax_cross_entropy(logits, labels, &grad);
    net.backward(grad);
    std::vector<Param*> params;
    net.collect_params(params);
    opt.step(params, 0.05);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.8);
}

TEST(PathNetwork, GradientsOnlyTouchSampledPath) {
  Rng rng(15);
  PathNetwork net(tiny_skeleton(8, 4), 31);
  Rng img_rng(16);
  const Tensor images = random_images(2, 8, img_rng);
  const Genotype g1 = random_genotype(rng);
  const Genotype g2 = random_genotype(rng);
  // Materialise both paths' params.
  net.forward(g1, images);
  net.clear_cache();
  net.forward(g2, images);
  net.clear_cache();

  // Backward through g1 only.
  const Tensor logits = net.forward(g1, images);
  Tensor grad;
  softmax_cross_entropy(logits, {1, 2}, &grad);
  net.backward(grad);

  std::vector<Param*> params;
  net.collect_params(params);
  std::size_t dirty = 0;
  for (const Param* p : params) dirty += p->dirty ? 1 : 0;
  EXPECT_GT(dirty, 0u);
  EXPECT_LT(dirty, params.size());  // the g2-only edges stay clean
}

}  // namespace
}  // namespace yoso
