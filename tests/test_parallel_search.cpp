// Batched/parallel evaluation engine: bit-identical results at any thread
// count, memoization correctness, and the negative-reward regression on
// SearchResult::best_fast_reward.

#include <gtest/gtest.h>

#include <memory>

#include <cmath>
#include <vector>

#include "core/alt_search.h"
#include "core/search.h"

namespace yoso {
namespace {

class ParallelSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    SystolicSimulator sim({}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<FastEvaluator>(*space_, *skeleton_, sim,
                              FastEvaluatorOptions{.predictor_samples = 150, .seed = 9});
    accurate_ = std::make_unique<AccurateEvaluator>(
        *skeleton_, SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    fast_.reset();
    skeleton_.reset();
    space_.reset();
  }

  static SearchOptions base_options() {
    SearchOptions opt;
    opt.iterations = 120;
    opt.top_n = 5;
    opt.trace_every = 10;
    opt.reward = balanced_reward();
    opt.seed = 13;
    return opt;
  }

  static void expect_identical(const SearchResult& a, const SearchResult& b) {
    EXPECT_DOUBLE_EQ(a.best_fast_reward, b.best_fast_reward);
    EXPECT_EQ(a.iterations_run, b.iterations_run);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
      EXPECT_DOUBLE_EQ(a.trace[i].reward, b.trace[i].reward);
      EXPECT_TRUE(a.trace[i].candidate == b.trace[i].candidate) << "trace " << i;
    }
    ASSERT_EQ(a.finalists.size(), b.finalists.size());
    for (std::size_t i = 0; i < a.finalists.size(); ++i) {
      EXPECT_TRUE(a.finalists[i].candidate == b.finalists[i].candidate)
          << "finalist " << i;
      EXPECT_DOUBLE_EQ(a.finalists[i].fast_reward, b.finalists[i].fast_reward);
      EXPECT_DOUBLE_EQ(a.finalists[i].accurate_reward,
                       b.finalists[i].accurate_reward);
    }
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
      EXPECT_TRUE(a.best->candidate == b.best->candidate);
    }
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<FastEvaluator> fast_;
  static std::unique_ptr<AccurateEvaluator> accurate_;
};

std::unique_ptr<DesignSpace> ParallelSearchTest::space_;
std::unique_ptr<NetworkSkeleton> ParallelSearchTest::skeleton_;
std::unique_ptr<FastEvaluator> ParallelSearchTest::fast_;
std::unique_ptr<AccurateEvaluator> ParallelSearchTest::accurate_;

TEST_F(ParallelSearchTest, BatchMatchesSerialEvaluation) {
  Rng rng(4);
  std::vector<CandidateDesign> batch;
  for (int i = 0; i < 30; ++i) batch.push_back(space_->random_candidate(rng));
  batch.push_back(batch[2]);  // in-batch revisits exercise the memo path
  batch.push_back(batch[7]);
  for (std::size_t threads : {1u, 3u}) {
    fast_->set_parallelism(threads);
    fast_->clear_cache();
    const std::vector<EvalResult> results = fast_->evaluate_batch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EvalResult serial = fast_->evaluate(batch[i]);
      EXPECT_DOUBLE_EQ(results[i].accuracy, serial.accuracy) << i;
      EXPECT_DOUBLE_EQ(results[i].latency_ms, serial.latency_ms) << i;
      EXPECT_DOUBLE_EQ(results[i].energy_mj, serial.energy_mj) << i;
    }
  }
}

TEST_F(ParallelSearchTest, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(fast_->evaluate_batch({}).empty());
  EXPECT_TRUE(accurate_->evaluate_batch({}).empty());
}

TEST_F(ParallelSearchTest, MemoizationCachesDistinctDesigns) {
  fast_->set_parallelism(2);
  fast_->clear_cache();
  Rng rng(6);
  std::vector<CandidateDesign> unique;
  for (int i = 0; i < 10; ++i)
    unique.push_back(space_->random_candidate(rng));
  std::vector<CandidateDesign> batch = unique;  // every design twice
  batch.insert(batch.end(), unique.begin(), unique.end());
  fast_->evaluate_batch(batch);
  EXPECT_EQ(fast_->cache_size(), 10u);
  fast_->evaluate_batch(batch);  // pure cache hits
  EXPECT_EQ(fast_->cache_size(), 10u);
}

TEST_F(ParallelSearchTest, YosoSearchIdenticalAcrossThreadCounts) {
  SearchOptions opt = base_options();
  opt.batch_size = 8;
  opt.threads = 1;
  fast_->clear_cache();
  const SearchResult r1 = YosoSearch(*space_, opt).run(*fast_, accurate_.get());
  opt.threads = 2;
  fast_->clear_cache();
  const SearchResult r2 = YosoSearch(*space_, opt).run(*fast_, accurate_.get());
  opt.threads = 8;
  fast_->clear_cache();
  const SearchResult r8 = YosoSearch(*space_, opt).run(*fast_, accurate_.get());
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

TEST_F(ParallelSearchTest, RandomSearchIdenticalAcrossThreadsAndBatches) {
  SearchOptions opt = base_options();
  opt.batch_size = 1;
  opt.threads = 1;
  fast_->clear_cache();
  const SearchResult serial =
      RandomSearchDriver(*space_, opt).run(*fast_, nullptr);
  // Random proposals are feedback-free, so even the batch size must not
  // change the outcome — only the evaluation schedule.
  opt.batch_size = 16;
  opt.threads = 4;
  fast_->clear_cache();
  const SearchResult batched =
      RandomSearchDriver(*space_, opt).run(*fast_, nullptr);
  expect_identical(serial, batched);
}

TEST_F(ParallelSearchTest, BatchSizeOneMatchesLegacySerialLoop) {
  // batch_size = 1 must reproduce the pre-batching proposal/feedback
  // interleaving exactly, whatever the thread count.
  SearchOptions opt = base_options();
  opt.batch_size = 1;
  opt.threads = 1;
  fast_->clear_cache();
  const SearchResult a = YosoSearch(*space_, opt).run(*fast_, nullptr);
  opt.threads = 4;
  fast_->clear_cache();
  const SearchResult b = YosoSearch(*space_, opt).run(*fast_, nullptr);
  expect_identical(a, b);
}

TEST_F(ParallelSearchTest, AltDriversRunThroughSharedBase) {
  SearchOptions opt = base_options();
  opt.iterations = 60;
  opt.threads = 2;
  const SearchResult evo =
      EvolutionarySearch(*space_, opt).run(*fast_, accurate_.get());
  EXPECT_EQ(evo.iterations_run, 60u);
  ASSERT_TRUE(evo.best.has_value());
  BayesOptOptions bopt;
  bopt.initial_random = 15;
  bopt.acquisition_pool = 8;
  const SearchResult bo =
      BayesOptSearch(*space_, opt, bopt).run(*fast_, accurate_.get());
  EXPECT_EQ(bo.iterations_run, 60u);
  ASSERT_TRUE(bo.best.has_value());
}

// ---------------------------------------------------------------- bugfix

/// Evaluator whose reward is negative for every candidate under a
/// penalty-heavy Eq. 2 parametrisation.
class FixedEvaluator : public Evaluator {
 public:
  explicit FixedEvaluator(EvalResult r) : result_(r) {}
  EvalResult evaluate(const CandidateDesign&) override { return result_; }

 private:
  EvalResult result_;
};

TEST(BestFastReward, ReportsNegativeBestInsteadOfZero) {
  // Large penalty terms make every reward negative; the old 0.0-initialised
  // best_fast_reward silently reported 0 here.
  RewardParams reward = balanced_reward();
  reward.alpha_lat = -4.0;  // pure-penalty latency term
  reward.alpha_eer = -4.0;
  FixedEvaluator fixed({0.5, 2.0, 18.0});
  const double expected = reward.compute({0.5, 2.0, 18.0});
  ASSERT_LT(expected, 0.0);

  DesignSpace space;
  SearchOptions opt;
  opt.iterations = 20;
  opt.top_n = 3;
  opt.reward = reward;
  opt.seed = 3;
  const SearchResult r = RandomSearchDriver(space, opt).run(fixed, nullptr);
  EXPECT_DOUBLE_EQ(r.best_fast_reward, expected);
  EXPECT_LT(r.best_fast_reward, 0.0);
}

TEST(BestFastReward, DefaultIsMinusInfinity) {
  const SearchResult r;
  EXPECT_TRUE(std::isinf(r.best_fast_reward));
  EXPECT_LT(r.best_fast_reward, 0.0);
}

}  // namespace
}  // namespace yoso
