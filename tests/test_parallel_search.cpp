// Batched/parallel evaluation engine: bit-identical results at any thread
// count (through the two-stage pipeline), memoization correctness, the
// shared-ExecContext contract, and the negative-reward regression on
// SearchResult::best_fast_reward.

#include <cmath>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/alt_search.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace yoso {
namespace {

class ParallelSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    SystolicSimulator sim({}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<FastEvaluator>(*space_, *skeleton_, sim,
                              FastEvaluatorOptions{.predictor_samples = 150, .seed = 9});
    accurate_ = std::make_unique<AccurateEvaluator>(
        *skeleton_, SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    fast_.reset();
    skeleton_.reset();
    space_.reset();
  }

  static SearchOptions base_options() {
    SearchOptions opt;
    opt.iterations = 120;
    opt.top_n = 5;
    opt.trace_every = 10;
    opt.reward = balanced_reward();
    opt.seed = 13;
    return opt;
  }

  static void expect_identical(const SearchResult& a, const SearchResult& b) {
    EXPECT_DOUBLE_EQ(a.best_fast_reward, b.best_fast_reward);
    EXPECT_EQ(a.iterations_run, b.iterations_run);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
      EXPECT_DOUBLE_EQ(a.trace[i].reward, b.trace[i].reward);
      EXPECT_TRUE(a.trace[i].candidate == b.trace[i].candidate) << "trace " << i;
    }
    ASSERT_EQ(a.finalists.size(), b.finalists.size());
    for (std::size_t i = 0; i < a.finalists.size(); ++i) {
      EXPECT_TRUE(a.finalists[i].candidate == b.finalists[i].candidate)
          << "finalist " << i;
      EXPECT_DOUBLE_EQ(a.finalists[i].fast_reward, b.finalists[i].fast_reward);
      EXPECT_DOUBLE_EQ(a.finalists[i].accurate_reward,
                       b.finalists[i].accurate_reward);
    }
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
      EXPECT_TRUE(a.best->candidate == b.best->candidate);
    }
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<FastEvaluator> fast_;
  static std::unique_ptr<AccurateEvaluator> accurate_;
};

std::unique_ptr<DesignSpace> ParallelSearchTest::space_;
std::unique_ptr<NetworkSkeleton> ParallelSearchTest::skeleton_;
std::unique_ptr<FastEvaluator> ParallelSearchTest::fast_;
std::unique_ptr<AccurateEvaluator> ParallelSearchTest::accurate_;

TEST_F(ParallelSearchTest, BatchMatchesSerialEvaluation) {
  // 90 misses span three pipeline chunks (kPipelineChunk = 32) with a
  // ragged tail, so the double-buffered stages and the chunk hand-off are
  // all exercised; the appended repeats exercise in-batch dedupe.
  Rng rng(4);
  std::vector<CandidateDesign> batch;
  for (int i = 0; i < 90; ++i) batch.push_back(space_->random_candidate(rng));
  batch.push_back(batch[2]);
  batch.push_back(batch[7]);
  batch.push_back(batch[40]);  // revisit from a later chunk
  for (std::size_t threads : {1u, 3u, 8u}) {
    fast_->set_exec_context(ExecContext::create(threads));
    fast_->clear_cache();
    const std::vector<EvalResult> results = fast_->evaluate_batch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EvalResult serial = fast_->evaluate(batch[i]);
      EXPECT_DOUBLE_EQ(results[i].accuracy, serial.accuracy) << i;
      EXPECT_DOUBLE_EQ(results[i].latency_ms, serial.latency_ms) << i;
      EXPECT_DOUBLE_EQ(results[i].energy_mj, serial.energy_mj) << i;
    }
  }
}

TEST_F(ParallelSearchTest, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(fast_->evaluate_batch({}).empty());
  EXPECT_TRUE(accurate_->evaluate_batch({}).empty());
}

TEST_F(ParallelSearchTest, MemoizationCachesDistinctDesigns) {
  fast_->set_parallelism(2);  // the deprecated shim must still route here
  EXPECT_EQ(fast_->parallelism(), 2u);
  fast_->clear_cache();
  Rng rng(6);
  std::vector<CandidateDesign> unique;
  for (int i = 0; i < 10; ++i)
    unique.push_back(space_->random_candidate(rng));
  std::vector<CandidateDesign> batch = unique;  // every design twice
  batch.insert(batch.end(), unique.begin(), unique.end());
  fast_->evaluate_batch(batch);
  EXPECT_EQ(fast_->cache_size(), 10u);
  fast_->evaluate_batch(batch);  // pure cache hits
  EXPECT_EQ(fast_->cache_size(), 10u);
}

TEST_F(ParallelSearchTest, CacheContentsIndependentOfThreadCount) {
  // The insert log is merged in proposal order on the coordinator, so after
  // an over-capacity-free run the cache holds exactly the distinct designs —
  // the same set at every thread count.
  Rng rng(17);
  std::vector<CandidateDesign> batch;
  for (int i = 0; i < 70; ++i) batch.push_back(space_->random_candidate(rng));
  std::vector<std::size_t> sizes;
  for (std::size_t threads : {1u, 2u, 8u}) {
    fast_->set_exec_context(ExecContext::create(threads));
    fast_->clear_cache();
    fast_->evaluate_batch(batch);
    sizes.push_back(fast_->cache_size());
    // A second pass must be pure hits: the cache grew identically.
    fast_->evaluate_batch(batch);
    EXPECT_EQ(fast_->cache_size(), sizes.back()) << threads;
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[0], sizes[2]);
  EXPECT_EQ(sizes[0], 70u);
}

TEST_F(ParallelSearchTest, YosoSearchIdenticalAcrossThreadCounts) {
  SearchOptions opt = base_options();
  opt.batch_size = 8;
  fast_->clear_cache();
  const SearchResult r1 = YosoSearch(*space_, opt).run(
      *fast_, accurate_.get(), ExecContext::create(1));
  fast_->clear_cache();
  const SearchResult r2 = YosoSearch(*space_, opt).run(
      *fast_, accurate_.get(), ExecContext::create(2));
  fast_->clear_cache();
  const SearchResult r8 = YosoSearch(*space_, opt).run(
      *fast_, accurate_.get(), ExecContext::create(8));
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

TEST_F(ParallelSearchTest, RandomSearchIdenticalAcrossThreadsAndBatches) {
  SearchOptions opt = base_options();
  opt.batch_size = 1;
  fast_->clear_cache();
  const SearchResult serial = RandomSearchDriver(*space_, opt).run(
      *fast_, nullptr, ExecContext::create(1));
  // Random proposals are feedback-free, so even the batch size must not
  // change the outcome — only the evaluation schedule.
  opt.batch_size = 16;
  fast_->clear_cache();
  const SearchResult batched = RandomSearchDriver(*space_, opt).run(
      *fast_, nullptr, ExecContext::create(4));
  expect_identical(serial, batched);
}

TEST_F(ParallelSearchTest, BatchSizeOneMatchesLegacySerialLoop) {
  // batch_size = 1 must reproduce the pre-batching proposal/feedback
  // interleaving exactly, whatever the thread count.
  SearchOptions opt = base_options();
  opt.batch_size = 1;
  fast_->clear_cache();
  const SearchResult a = YosoSearch(*space_, opt).run(
      *fast_, nullptr, ExecContext::create(1));
  fast_->clear_cache();
  const SearchResult b = YosoSearch(*space_, opt).run(
      *fast_, nullptr, ExecContext::create(4));
  expect_identical(a, b);
}

TEST_F(ParallelSearchTest, SharedExecContextServesBothEvaluators) {
  // One context injected via run() must land in both evaluators — the
  // Fast+Accurate pair shares the pool instead of oversubscribing — and the
  // result must match a serial run bit for bit.  The Step-3 rerank fans the
  // accurate evaluator out over the same pool right after the fast batches
  // used it, which would deadlock or trip the nested-parallel_for contract
  // if the hand-off leaked.
  SearchOptions opt = base_options();
  opt.batch_size = 8;
  const ExecContextPtr shared = ExecContext::create(3);
  fast_->clear_cache();
  const SearchResult r = YosoSearch(*space_, opt).run(
      *fast_, accurate_.get(), shared);
  EXPECT_EQ(fast_->parallelism(), 3u);
  ASSERT_TRUE(r.best.has_value());
  fast_->clear_cache();
  const SearchResult serial = YosoSearch(*space_, opt).run(
      *fast_, accurate_.get(), ExecContext::create(1));
  expect_identical(serial, r);
}

TEST_F(ParallelSearchTest, AltDriversRunThroughSharedBase) {
  SearchOptions opt = base_options();
  opt.iterations = 60;
  const ExecContextPtr exec = ExecContext::create(2);
  const SearchResult evo =
      EvolutionarySearch(*space_, opt).run(*fast_, accurate_.get(), exec);
  EXPECT_EQ(evo.iterations_run, 60u);
  ASSERT_TRUE(evo.best.has_value());
  BayesOptOptions bopt;
  bopt.initial_random = 15;
  bopt.acquisition_pool = 8;
  const SearchResult bo =
      BayesOptSearch(*space_, opt, bopt).run(*fast_, accurate_.get(), exec);
  EXPECT_EQ(bo.iterations_run, 60u);
  ASSERT_TRUE(bo.best.has_value());
}

// ---------------------------------------------------------------- bugfix

/// Evaluator whose reward is negative for every candidate under a
/// penalty-heavy Eq. 2 parametrisation.
class FixedEvaluator : public Evaluator {
 public:
  explicit FixedEvaluator(EvalResult r) : result_(r) {}
  EvalResult evaluate(const CandidateDesign&) override { return result_; }

 private:
  EvalResult result_;
};

TEST(BestFastReward, ReportsNegativeBestInsteadOfZero) {
  // Large penalty terms make every reward negative; the old 0.0-initialised
  // best_fast_reward silently reported 0 here.
  RewardParams reward = balanced_reward();
  reward.alpha_lat = -4.0;  // pure-penalty latency term
  reward.alpha_eer = -4.0;
  FixedEvaluator fixed({0.5, 2.0, 18.0});
  const double expected = reward.compute({0.5, 2.0, 18.0});
  ASSERT_LT(expected, 0.0);

  DesignSpace space;
  SearchOptions opt;
  opt.iterations = 20;
  opt.top_n = 3;
  opt.reward = reward;
  opt.seed = 3;
  const SearchResult r = RandomSearchDriver(space, opt).run(fixed, nullptr);
  EXPECT_DOUBLE_EQ(r.best_fast_reward, expected);
  EXPECT_LT(r.best_fast_reward, 0.0);
}

TEST(BestFastReward, DefaultIsMinusInfinity) {
  const SearchResult r;
  EXPECT_TRUE(std::isinf(r.best_fast_reward));
  EXPECT_LT(r.best_fast_reward, 0.0);
}

}  // namespace
}  // namespace yoso
