#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/rtl_export.h"

namespace yoso {
namespace {

AcceleratorConfig config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(RtlExport, ModulesAreBalanced) {
  const std::string rtl = export_systolic_rtl(config());
  EXPECT_EQ(count_occurrences(rtl, "\nmodule ") +
                (rtl.rfind("module ", 0) == 0 ? 1 : 0),
            count_occurrences(rtl, "endmodule"));
  EXPECT_EQ(count_occurrences(rtl, "endmodule"), 3u);  // pe, gbuf, top
}

TEST(RtlExport, ParametersReflectConfig) {
  const std::string rtl = export_systolic_rtl(config());
  EXPECT_NE(rtl.find("parameter int PE_ROWS = 16"), std::string::npos);
  EXPECT_NE(rtl.find("parameter int PE_COLS = 32"), std::string::npos);
  // 512 KB at 16-bit words = 262144 words.
  EXPECT_NE(rtl.find("parameter longint WORDS = 262144"), std::string::npos);
  // 512 B register buffer at 16-bit words = 256 words.
  EXPECT_NE(rtl.find("parameter int RBUF_WORDS = 256"), std::string::npos);
}

TEST(RtlExport, HeaderDocumentsConfigAndDataflow) {
  const std::string rtl = export_systolic_rtl(config());
  EXPECT_NE(rtl.find("16*32/512KB/512B/OS"), std::string::npos);
  EXPECT_NE(rtl.find("output-stationary"), std::string::npos);
}

TEST(RtlExport, EachDataflowGetsItsComment) {
  for (int d = 0; d < kNumDataflows; ++d) {
    AcceleratorConfig c = config();
    c.dataflow = static_cast<Dataflow>(d);
    const std::string rtl = export_systolic_rtl(c);
    EXPECT_NE(rtl.find("TODO(" + dataflow_name(c.dataflow) + ")"),
              std::string::npos);
  }
}

TEST(RtlExport, GenerateLoopsAndPeInstancePresent) {
  const std::string rtl = export_systolic_rtl(config());
  EXPECT_NE(rtl.find("for (genvar r = 0; r < PE_ROWS; r++)"),
            std::string::npos);
  EXPECT_NE(rtl.find("yoso_pe #("), std::string::npos);
  EXPECT_NE(rtl.find("u_gbuf"), std::string::npos);
}

TEST(RtlExport, CustomPrefixAndWidths) {
  RtlOptions opt;
  opt.module_prefix = "edge";
  opt.data_width = 8;
  opt.accumulator_width = 24;
  const std::string rtl = export_systolic_rtl(config(), opt);
  EXPECT_EQ(rtl_top_module_name(opt), "edge_systolic_top");
  EXPECT_NE(rtl.find("module edge_systolic_top"), std::string::npos);
  EXPECT_NE(rtl.find("module edge_pe"), std::string::npos);
  EXPECT_NE(rtl.find("DATA_W = 8"), std::string::npos);
  EXPECT_NE(rtl.find("ACC_W  = 24"), std::string::npos);
  // 512 KB at 8-bit words = 524288 words.
  EXPECT_NE(rtl.find("WORDS = 524288"), std::string::npos);
}

TEST(RtlExport, BeginEndBlocksBalanced) {
  const std::string rtl = export_systolic_rtl(config());
  // `begin` ... `end` balance (endmodule excluded by the trailing space /
  // newline patterns used here).
  const std::size_t begins = count_occurrences(rtl, "begin");
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = rtl.find("end", pos)) != std::string::npos;
       pos += 3) {
    // count "end" not followed by "module"
    if (rtl.compare(pos, 9, "endmodule") != 0) ++ends;
  }
  EXPECT_EQ(begins, ends);
}

}  // namespace
}  // namespace yoso
