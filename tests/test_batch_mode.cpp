#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "arch/zoo.h"

namespace yoso {
namespace {

AcceleratorConfig config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

TEST(BatchMode, BatchOneMatchesDefault) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v1").genotype;
  const auto a = sim.simulate_network(g, default_skeleton(), config());
  const auto b = sim.simulate_network(g, default_skeleton(), config(), 1);
  EXPECT_DOUBLE_EQ(a.energy_mj, b.energy_mj);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(b.batch, 1);
}

TEST(BatchMode, PerImageEnergyDecreasesWithBatch) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v2").genotype;
  double prev = 1e18;
  for (int batch : {1, 2, 4, 8, 16}) {
    const auto r = sim.simulate_network(g, default_skeleton(), config(),
                                        batch);
    EXPECT_LE(r.energy_mj, prev + 1e-12) << "batch " << batch;
    prev = r.energy_mj;
  }
}

TEST(BatchMode, SavingsSaturate) {
  // Energy(batch=16) must be bounded below by the activation-only cost:
  // going 16 -> 32 changes little.
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("EnasNet").genotype;
  const auto b16 = sim.simulate_network(g, default_skeleton(), config(), 16);
  const auto b32 = sim.simulate_network(g, default_skeleton(), config(), 32);
  EXPECT_NEAR(b32.energy_mj, b16.energy_mj, b16.energy_mj * 0.05);
}

TEST(BatchMode, LatencyNeverBelowComputeBound) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto layers =
      extract_layers(reference_model("NasNet-A").genotype, default_skeleton());
  const auto r = sim.simulate(layers, config(), 64);
  double compute_cycles = 0.0;
  for (const auto& lr : r.layers)
    compute_cycles += lr.mapping.compute_cycles;
  EXPECT_GE(r.total_cycles, compute_cycles * 0.999);
}

TEST(BatchMode, ThroughputReported) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto r = sim.simulate_network(reference_model("Darts_v1").genotype,
                                      default_skeleton(), config(), 4);
  EXPECT_EQ(r.batch, 4);
  EXPECT_NEAR(r.throughput_fps, 1000.0 / r.latency_ms, 1e-6);
}

TEST(BatchMode, InvalidBatchThrows) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto layers =
      extract_layers(reference_model("Darts_v1").genotype, default_skeleton());
  EXPECT_THROW(sim.simulate(layers, config(), 0), std::invalid_argument);
}

TEST(BatchMode, WeightShareWithinTotal) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto layers =
      extract_layers(reference_model("Darts_v2").genotype, default_skeleton());
  const auto r = sim.simulate(layers, config());
  for (const auto& lr : r.layers) {
    EXPECT_GE(lr.mapping.dram_weight_bytes, 0.0);
    EXPECT_LE(lr.mapping.dram_weight_bytes, lr.mapping.dram_bytes + 1e-9);
  }
}

TEST(BatchMode, WeightHeavyLayersBenefitMost) {
  // A fully connected layer (weights dominate) must amortise strongly; a
  // pool layer (no weights) must not change at all.
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  Layer fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.in_h = 1;
  fc.in_w = 1;
  fc.in_c = 4096;
  fc.out_c = 1000;
  fc.kernel = 1;
  fc.stride = 1;
  const auto fc1 = sim.simulate({fc}, config(), 1);
  const auto fc8 = sim.simulate({fc}, config(), 8);
  EXPECT_LT(fc8.energy_mj, fc1.energy_mj * 0.35);

  Layer pool;
  pool.kind = LayerKind::kPool;
  pool.in_h = 32;
  pool.in_w = 32;
  pool.in_c = 64;
  pool.out_c = 64;
  pool.kernel = 3;
  pool.stride = 2;
  const auto p1 = sim.simulate({pool}, config(), 1);
  const auto p8 = sim.simulate({pool}, config(), 8);
  EXPECT_NEAR(p8.energy_mj, p1.energy_mj, p1.energy_mj * 0.01);
}

}  // namespace
}  // namespace yoso
