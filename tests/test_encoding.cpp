#include <gtest/gtest.h>

#include "arch/encoding.h"
#include "arch/genotype.h"
#include "arch/ops.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(Encoding, FortyActions) {
  EXPECT_EQ(kDnnActionCount, 40);
  EXPECT_EQ(dnn_action_steps().size(), 40u);
}

TEST(Encoding, StepMetadata) {
  const auto steps = dnn_action_steps();
  // First node (node 2) of the normal cell: two inputs with cardinality 2,
  // then two ops with cardinality 6.
  EXPECT_EQ(steps[0].kind, ActionStep::Kind::kInput);
  EXPECT_EQ(steps[0].cardinality, 2);
  EXPECT_EQ(steps[1].cardinality, 2);
  EXPECT_EQ(steps[2].kind, ActionStep::Kind::kOp);
  EXPECT_EQ(steps[2].cardinality, 6);
  EXPECT_EQ(steps[3].cardinality, 6);
  // Last node (node 6) of the reduction cell: inputs have cardinality 6.
  EXPECT_EQ(steps[36].cardinality, 6);
  EXPECT_EQ(steps[36].kind, ActionStep::Kind::kInput);
  EXPECT_NE(steps[36].name.find("reduction.node6"), std::string::npos);
}

TEST(Encoding, InputCardinalityGrowsWithNode) {
  const auto steps = dnn_action_steps();
  for (int cell = 0; cell < 2; ++cell) {
    for (int n = 0; n < kInteriorNodes; ++n) {
      const std::size_t base = static_cast<std::size_t>(cell) * 20 +
                               static_cast<std::size_t>(n) * 4;
      EXPECT_EQ(steps[base].cardinality, n + 2);
      EXPECT_EQ(steps[base + 1].cardinality, n + 2);
    }
  }
}

TEST(Encoding, RoundTripRandom) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Genotype g = random_genotype(rng);
    const auto actions = encode_genotype(g);
    ASSERT_EQ(actions.size(), 40u);
    const Genotype back = decode_genotype(actions);
    EXPECT_EQ(back, g);
  }
}

TEST(Encoding, ActionsRespectCardinalities) {
  Rng rng(32);
  const auto steps = dnn_action_steps();
  for (int i = 0; i < 100; ++i) {
    const auto actions = encode_genotype(random_genotype(rng));
    for (std::size_t t = 0; t < actions.size(); ++t) {
      EXPECT_GE(actions[t], 0);
      EXPECT_LT(actions[t], steps[t].cardinality);
    }
  }
}

TEST(Encoding, DecodeWrongLengthThrows) {
  std::vector<int> actions(39, 0);
  EXPECT_THROW(decode_genotype(actions), std::invalid_argument);
  actions.assign(41, 0);
  EXPECT_THROW(decode_genotype(actions), std::invalid_argument);
}

TEST(Encoding, DecodeOutOfRangeThrows) {
  Rng rng(33);
  auto actions = encode_genotype(random_genotype(rng));
  actions[0] = 2;  // node 2 input has cardinality 2
  EXPECT_THROW(decode_genotype(actions), std::invalid_argument);
  actions[0] = -1;
  EXPECT_THROW(decode_genotype(actions), std::invalid_argument);
}

TEST(Encoding, AllZeroActionsDecode) {
  const std::vector<int> zeros(40, 0);
  const Genotype g = decode_genotype(zeros);
  EXPECT_TRUE(validate_genotype(g));
  for (const NodeSpec& s : g.normal.nodes) {
    EXPECT_EQ(s.input_a, 0);
    EXPECT_EQ(s.op_a, Op::kConv3x3);
  }
}

}  // namespace
}  // namespace yoso
