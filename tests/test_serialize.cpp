#include <gtest/gtest.h>

#include "accel/config.h"
#include "arch/genotype.h"
#include "arch/ops.h"
#include "core/design_space.h"
#include "core/serialize.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(Serialize, CellRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const CellGenotype cell = random_cell(rng);
    EXPECT_EQ(parse_cell(serialize_cell(cell)), cell);
  }
}

TEST(Serialize, GenotypeRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Genotype g = random_genotype(rng);
    EXPECT_EQ(parse_genotype(serialize_genotype(g)), g);
  }
}

TEST(Serialize, GenotypeFormatIsStable) {
  Genotype g;
  for (int n = 0; n < kInteriorNodes; ++n) {
    g.normal.nodes.push_back({0, 1, Op::kConv3x3, Op::kMaxPool3x3});
    g.reduction.nodes.push_back({n, n + 1, Op::kDwConv5x5, Op::kAvgPool3x3});
  }
  const std::string s = serialize_genotype(g);
  EXPECT_EQ(s.rfind("normal=0,1,conv3x3,maxpool3x3;", 0), 0u);
  EXPECT_NE(s.find("|reduction=0,1,dwconv5x5,avgpool3x3;"), std::string::npos);
}

TEST(Serialize, ParseCellRejectsMalformed) {
  EXPECT_THROW(parse_cell(""), std::invalid_argument);
  EXPECT_THROW(parse_cell("0,1,conv3x3"), std::invalid_argument);
  EXPECT_THROW(parse_cell("0,1,conv3x3,notanop;0,1,conv3x3,conv3x3"),
               std::invalid_argument);
  EXPECT_THROW(parse_cell("x,1,conv3x3,conv3x3"), std::invalid_argument);
}

TEST(Serialize, ParseCellRejectsInvalidStructure) {
  // Right syntax, wrong node count.
  EXPECT_THROW(parse_cell("0,1,conv3x3,conv3x3"), std::invalid_argument);
  // Forward reference in an otherwise complete cell.
  std::string text;
  for (int n = 0; n < kInteriorNodes; ++n) {
    if (n > 0) text += ";";
    text += "0,6,conv3x3,conv3x3";  // node 2 cannot read node 6
  }
  EXPECT_THROW(parse_cell(text), std::invalid_argument);
}

TEST(Serialize, ParseGenotypeRejectsMissingParts) {
  EXPECT_THROW(parse_genotype("normal=0,1,conv3x3,conv3x3"),
               std::invalid_argument);
  EXPECT_THROW(parse_genotype("foo=x|reduction=y"), std::invalid_argument);
}

TEST(Serialize, ConfigRoundTrip) {
  const ConfigSpace space = default_config_space();
  for (const AcceleratorConfig& c : space.enumerate())
    EXPECT_EQ(parse_accelerator_config(c.to_string()), c);
}

TEST(Serialize, ConfigParsesPaperNotation) {
  const AcceleratorConfig c = parse_accelerator_config("16*32/512KB/512B/OS");
  EXPECT_EQ(c.pe_rows, 16);
  EXPECT_EQ(c.pe_cols, 32);
  EXPECT_EQ(c.g_buf_kb, 512);
  EXPECT_EQ(c.r_buf_bytes, 512);
  EXPECT_EQ(c.dataflow, Dataflow::kOutputStationary);
}

TEST(Serialize, ConfigAcceptsLowercaseUnits) {
  const AcceleratorConfig c = parse_accelerator_config("8*8/108kb/64b/NLR");
  EXPECT_EQ(c.g_buf_kb, 108);
  EXPECT_EQ(c.r_buf_bytes, 64);
}

TEST(Serialize, ConfigRejectsMalformed) {
  EXPECT_THROW(parse_accelerator_config(""), std::invalid_argument);
  EXPECT_THROW(parse_accelerator_config("16x32/512KB/512B/OS"),
               std::invalid_argument);
  EXPECT_THROW(parse_accelerator_config("16*32/512/512B/OS"),
               std::invalid_argument);
  EXPECT_THROW(parse_accelerator_config("16*32/512KB/512B/XX"),
               std::invalid_argument);
  EXPECT_THROW(parse_accelerator_config("16*32/512KB/512B"),
               std::invalid_argument);
  EXPECT_THROW(parse_accelerator_config("-4*32/512KB/512B/OS"),
               std::invalid_argument);
}

TEST(Serialize, CandidateRoundTrip) {
  DesignSpace space;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const CandidateDesign c = space.random_candidate(rng);
    EXPECT_EQ(parse_candidate(serialize_candidate(c)), c);
  }
}

TEST(Serialize, CandidateRejectsMissingSeparator) {
  EXPECT_THROW(parse_candidate("no-at-sign-here"), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
