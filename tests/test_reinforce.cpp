#include <gtest/gtest.h>

#include "rl/controller.h"
#include "rl/reinforce.h"
#include "util/rng.h"

namespace yoso {
namespace {

std::vector<int> toy_cards() { return {3, 3, 3, 3, 3, 3}; }

TEST(ReinforceTrainer, BaselineTracksRewards) {
  LstmController ctrl(toy_cards(), {});
  ReinforceOptions opt;
  opt.baseline_decay = 0.5;
  ReinforceTrainer trainer(ctrl, opt);
  EXPECT_DOUBLE_EQ(trainer.baseline_value(), 0.0);
  Rng rng(1);
  const Episode ep = trainer.propose(rng);
  trainer.feedback(ep, 2.0);
  EXPECT_DOUBLE_EQ(trainer.baseline_value(), 2.0);
  trainer.feedback(trainer.propose(rng), 4.0);
  EXPECT_DOUBLE_EQ(trainer.baseline_value(), 3.0);
  EXPECT_EQ(trainer.episodes_seen(), 2u);
}

TEST(ReinforceTrainer, LearnsToyObjective) {
  LstmController ctrl(toy_cards(), {});
  ReinforceTrainer trainer(ctrl, {});
  Rng rng(2);
  for (int it = 0; it < 1500; ++it) {
    const Episode ep = trainer.propose(rng);
    double r = 0.0;
    for (int a : ep.actions) r += a == 2 ? 1.0 : 0.0;
    trainer.feedback(ep, r / 6.0);
  }
  const auto best = ctrl.argmax_actions();
  int correct = 0;
  for (int a : best) correct += a == 2 ? 1 : 0;
  EXPECT_GE(correct, 5);
}

TEST(ReinforceTrainer, BatchedUpdatesDeferAdam) {
  LstmController ctrl(toy_cards(), {});
  ReinforceOptions opt;
  opt.batch_size = 4;
  ReinforceTrainer trainer(ctrl, opt);
  Rng rng(3);
  const auto before = ctrl.argmax_actions();
  // Three feedbacks: still pending, no Adam step applied yet.
  for (int i = 0; i < 3; ++i) trainer.feedback(trainer.propose(rng), 1.0);
  EXPECT_EQ(ctrl.argmax_actions(), before);
  trainer.feedback(trainer.propose(rng), 1.0);  // fourth triggers update
  // (Policy may or may not change argmax; we only require no crash and the
  // episode counter being right.)
  EXPECT_EQ(trainer.episodes_seen(), 4u);
}

TEST(ReinforceTrainer, NoBaselineModeRuns) {
  LstmController ctrl(toy_cards(), {});
  ReinforceOptions opt;
  opt.use_baseline = false;
  ReinforceTrainer trainer(ctrl, opt);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) trainer.feedback(trainer.propose(rng), 0.5);
  EXPECT_EQ(trainer.episodes_seen(), 20u);
}

TEST(RandomSearcher, UniformOverSpace) {
  RandomSearcher searcher({2, 5});
  Rng rng(5);
  std::vector<int> counts0(2, 0), counts1(5, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto a = searcher.propose(rng);
    ASSERT_EQ(a.size(), 2u);
    ++counts0[static_cast<std::size_t>(a[0])];
    ++counts1[static_cast<std::size_t>(a[1])];
  }
  EXPECT_NEAR(counts0[0], 3500, 350);
  for (int c : counts1) EXPECT_NEAR(c, 1400, 250);
}

}  // namespace
}  // namespace yoso
