#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace yoso {
namespace {

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
}

}  // namespace
}  // namespace yoso
