// Batched GP inference: predict_batch must be bit-identical to per-row
// predict() at any thread count, the tuned fit must build the pairwise
// distance matrix exactly once, and the PerformancePredictor batch path
// must reproduce the scalar per-candidate path exactly.

#include <cmath>
#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "accel/tech.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

struct GpData {
  Matrix x;
  std::vector<double> y;
  Matrix queries;
};

GpData make_data(std::size_t n, std::size_t d, std::size_t nq,
                 std::uint64_t seed) {
  Rng rng(seed);
  GpData data;
  data.x = Matrix(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      data.x(r, c) = rng.uniform(-2.0, 2.0);
      s += data.x(r, c);
    }
    data.y.push_back(std::sin(s) + 0.1 * rng.normal());
  }
  data.queries = Matrix(nq, d);
  for (std::size_t r = 0; r < nq; ++r)
    for (std::size_t c = 0; c < d; ++c)
      data.queries(r, c) = rng.uniform(-2.0, 2.0);
  return data;
}

std::vector<double> query_row(const Matrix& q, std::size_t r) {
  std::vector<double> row(q.cols());
  for (std::size_t c = 0; c < q.cols(); ++c) row[c] = q(r, c);
  return row;
}

TEST(GpBatchTest, BatchMeansBitIdenticalToPerRowPredict) {
  const GpData d = make_data(180, 6, 67, 3);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const std::vector<double> batch = gp.predict_batch(d.queries);
  ASSERT_EQ(batch.size(), d.queries.rows());
  for (std::size_t r = 0; r < d.queries.rows(); ++r)
    EXPECT_DOUBLE_EQ(batch[r], gp.predict(query_row(d.queries, r)))
        << "row " << r;
}

TEST(GpBatchTest, BatchVarianceBitIdenticalToPerRow) {
  const GpData d = make_data(120, 5, 41, 5);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const auto batch = gp.predict_batch_with_variance(d.queries);
  ASSERT_EQ(batch.size(), d.queries.rows());
  for (std::size_t r = 0; r < d.queries.rows(); ++r) {
    const auto [mu, var] = gp.predict_with_variance(query_row(d.queries, r));
    EXPECT_DOUBLE_EQ(batch[r].first, mu) << "row " << r;
    EXPECT_DOUBLE_EQ(batch[r].second, var) << "row " << r;
    EXPECT_GE(batch[r].second, 0.0);
  }
}

// Chunking (kChunk = 256) must not change results at the chunk seams.
TEST(GpBatchTest, LargeBatchCrossesChunkBoundary) {
  const GpData d = make_data(90, 4, 600, 7);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const std::vector<double> batch = gp.predict_batch(d.queries);
  for (const std::size_t r : {0u, 255u, 256u, 257u, 511u, 512u, 599u})
    EXPECT_DOUBLE_EQ(batch[r], gp.predict(query_row(d.queries, r)))
        << "row " << r;
}

TEST(GpBatchTest, PoolResultsBitIdenticalAcrossThreadCounts) {
  const GpData d = make_data(150, 6, 83, 11);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const std::vector<double> serial = gp.predict_batch(d.queries, nullptr);
  const auto serial_var = gp.predict_batch_with_variance(d.queries, nullptr);
  // Worker counts 0/1/7 = total thread counts 1/2/8.
  for (const std::size_t workers : {0u, 1u, 7u}) {
    ThreadPool pool(workers);
    const std::vector<double> pooled = gp.predict_batch(d.queries, &pool);
    const auto pooled_var = gp.predict_batch_with_variance(d.queries, &pool);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      ASSERT_EQ(pooled[r], serial[r]) << "workers=" << workers << " r=" << r;
      ASSERT_EQ(pooled_var[r].first, serial_var[r].first)
          << "workers=" << workers << " r=" << r;
      ASSERT_EQ(pooled_var[r].second, serial_var[r].second)
          << "workers=" << workers << " r=" << r;
    }
  }
}

TEST(GpBatchTest, TunedFitBuildsDistanceMatrixOnce) {
  const GpData d = make_data(140, 5, 1, 13);
  GpRegressor tuned({}, /*tune=*/true);
  tuned.fit(d.x, d.y);
  EXPECT_EQ(tuned.distance_matrix_builds(), 1u);
  GpRegressor fixed({}, /*tune=*/false);
  fixed.fit(d.x, d.y);
  EXPECT_EQ(fixed.distance_matrix_builds(), 1u);
  // Refit resets the counter rather than accumulating.
  tuned.fit(d.x, d.y);
  EXPECT_EQ(tuned.distance_matrix_builds(), 1u);
}

TEST(GpBatchTest, BatchValidatesFitAndDimensions) {
  GpRegressor gp;
  EXPECT_THROW(gp.predict_batch(Matrix(2, 3)), std::logic_error);
  const GpData d = make_data(60, 4, 1, 17);
  gp.fit(d.x, d.y);
  EXPECT_THROW(gp.predict_batch(Matrix(2, 5)), std::invalid_argument);
  EXPECT_TRUE(gp.predict_batch(Matrix(0, 4)).empty());
}

TEST(GpBatchTest, PerformancePredictorBatchMatchesScalarPath) {
  const NetworkSkeleton skeleton = default_skeleton();
  const SystolicSimulator simulator(TechnologyParams{},
                                    SimFidelity::kAnalytical);
  const ConfigSpace space = default_config_space();
  Rng rng(19);
  const auto samples = collect_samples(90, simulator, space, skeleton, rng);
  PerformancePredictor pred(skeleton);
  pred.fit(samples);

  // Query candidates distinct from the training draws.
  std::vector<Genotype> genos;
  std::vector<AcceleratorConfig> configs;
  Matrix fx(24, codesign_features(samples.front().genotype,
                                  samples.front().config, skeleton)
                    .size());
  for (std::size_t i = 0; i < fx.rows(); ++i) {
    genos.push_back(random_genotype(rng));
    std::vector<int> actions(ConfigSpace::kActionCount);
    for (int a = 0; a < ConfigSpace::kActionCount; ++a)
      actions[static_cast<std::size_t>(a)] =
          rng.uniform_int(0, space.cardinality(a) - 1);
    configs.push_back(space.decode(actions));
    const auto f = codesign_features(genos[i], configs[i], skeleton);
    for (std::size_t c = 0; c < f.size(); ++c) fx(i, c) = f[c];
  }

  ThreadPool pool(3);
  const std::vector<double> lat = pred.predict_latency_ms_batch(fx, &pool);
  const std::vector<double> en = pred.predict_energy_mj_batch(fx, &pool);
  for (std::size_t i = 0; i < fx.rows(); ++i) {
    EXPECT_DOUBLE_EQ(lat[i], pred.predict_latency_ms(genos[i], configs[i]))
        << "cand " << i;
    EXPECT_DOUBLE_EQ(en[i], pred.predict_energy_mj(genos[i], configs[i]))
        << "cand " << i;
  }
}

TEST(GpBatchTest, UnfittedPredictorBatchThrows) {
  PerformancePredictor pred(default_skeleton());
  EXPECT_THROW(pred.predict_latency_ms_batch(Matrix(1, 21)),
               std::logic_error);
  EXPECT_THROW(pred.predict_energy_mj_batch(Matrix(1, 21)),
               std::logic_error);
}

}  // namespace
}  // namespace yoso
