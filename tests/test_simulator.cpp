#include <cmath>
#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/zoo.h"
#include "util/rng.h"

namespace yoso {
namespace {

AcceleratorConfig base_config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

TEST(Simulator, EnergyBreakdownSumsToTotal) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v2").genotype;
  const auto r = sim.simulate_network(g, default_skeleton(), base_config());
  EXPECT_NEAR(r.energy_mj,
              r.dram_mj + r.gbuf_mj + r.rbuf_mj + r.mac_mj + r.static_mj,
              1e-9);
  EXPECT_GT(r.dram_mj, 0.0);
  EXPECT_GT(r.mac_mj, 0.0);
}

TEST(Simulator, ResultsInPaperDecade) {
  // Calibration guard: reference nets on a large config should land in the
  // paper's reported decade (a few mJ, around a millisecond).
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  for (const auto& m : reference_models()) {
    const auto r =
        sim.simulate_network(m.genotype, default_skeleton(), base_config());
    EXPECT_GT(r.energy_mj, 2.0) << m.name;
    EXPECT_LT(r.energy_mj, 40.0) << m.name;
    EXPECT_GT(r.latency_ms, 0.2) << m.name;
    EXPECT_LT(r.latency_ms, 8.0) << m.name;
  }
}

TEST(Simulator, BiggerNetworkCostsMore) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto small = sim.simulate_network(
      reference_model("Darts_v1").genotype, default_skeleton(), base_config());
  const auto big = sim.simulate_network(
      reference_model("PnasNet").genotype, default_skeleton(), base_config());
  EXPECT_GT(big.energy_mj, small.energy_mj);
  EXPECT_GT(big.latency_ms, small.latency_ms);
}

TEST(Simulator, MorePesReduceLatency) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v2").genotype;
  AcceleratorConfig small = base_config();
  small.pe_rows = 8;
  small.pe_cols = 8;
  const auto rs = sim.simulate_network(g, default_skeleton(), small);
  const auto rb = sim.simulate_network(g, default_skeleton(), base_config());
  EXPECT_GT(rs.latency_ms, rb.latency_ms);
}

TEST(Simulator, OutputStationaryBeatsNoLocalReuse) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v2").genotype;
  AcceleratorConfig nlr = base_config();
  nlr.dataflow = Dataflow::kNoLocalReuse;
  const auto r_os = sim.simulate_network(g, default_skeleton(), base_config());
  const auto r_nlr = sim.simulate_network(g, default_skeleton(), nlr);
  EXPECT_LT(r_os.latency_ms, r_nlr.latency_ms);
  EXPECT_LT(r_os.energy_mj, r_nlr.energy_mj);
}

TEST(Simulator, CycleLevelRefinesAnalytical) {
  const auto& g = reference_model("EnasNet").genotype;
  SystolicSimulator fast({}, SimFidelity::kAnalytical);
  SystolicSimulator slow({}, SimFidelity::kCycleLevel);
  const auto ra = fast.simulate_network(g, default_skeleton(), base_config());
  const auto rc = slow.simulate_network(g, default_skeleton(), base_config());
  // Same energy model; cycle-level latency differs but stays within 2x.
  EXPECT_NEAR(rc.energy_mj, ra.energy_mj, ra.energy_mj * 0.25);
  EXPECT_GT(rc.latency_ms, ra.latency_ms * 0.5);
  EXPECT_LT(rc.latency_ms, ra.latency_ms * 2.0);
}

TEST(Simulator, DeterministicAcrossCalls) {
  SystolicSimulator sim({}, SimFidelity::kCycleLevel);
  const auto& g = reference_model("NasNet-A").genotype;
  const auto r1 = sim.simulate_network(g, default_skeleton(), base_config());
  const auto r2 = sim.simulate_network(g, default_skeleton(), base_config());
  EXPECT_DOUBLE_EQ(r1.energy_mj, r2.energy_mj);
  EXPECT_DOUBLE_EQ(r1.latency_ms, r2.latency_ms);
}

TEST(Simulator, PerLayerResultsPresent) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto skeleton = default_skeleton();
  const auto layers =
      extract_layers(reference_model("Darts_v1").genotype, skeleton);
  const auto r = sim.simulate(layers, base_config());
  ASSERT_EQ(r.layers.size(), layers.size());
  double cycles = 0.0;
  for (const auto& lr : r.layers) {
    EXPECT_GT(lr.cycles, 0.0);
    EXPECT_GE(lr.energy_pj, 0.0);
    cycles += lr.cycles;
  }
  EXPECT_NEAR(cycles, r.total_cycles, 1e-6);
}

TEST(Simulator, MeanUtilizationBounded) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto r = sim.simulate_network(reference_model("Darts_v2").genotype,
                                      default_skeleton(), base_config());
  EXPECT_GT(r.mean_utilization, 0.1);
  EXPECT_LE(r.mean_utilization, 1.0);
}

TEST(Simulator, StaticEnergyGrowsWithIdleHardware) {
  // Same network, larger array and buffer -> more static energy even if
  // latency shrinks only modestly.
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto& g = reference_model("Darts_v1").genotype;
  AcceleratorConfig small{8, 8, 108, 64, Dataflow::kOutputStationary};
  AcceleratorConfig large{16, 32, 1024, 1024, Dataflow::kOutputStationary};
  const auto rs = sim.simulate_network(g, default_skeleton(), small);
  const auto rl = sim.simulate_network(g, default_skeleton(), large);
  EXPECT_GT(rl.static_mj / rl.latency_ms, rs.static_mj / rs.latency_ms);
}

TEST(Simulator, BatchOfRandomCandidatesIsFinite) {
  SystolicSimulator sim({}, SimFidelity::kCycleLevel);
  Rng rng(123);
  const auto skeleton = default_skeleton();
  for (int i = 0; i < 10; ++i) {
    const auto g = random_genotype(rng);
    const auto r = sim.simulate_network(g, skeleton, base_config());
    EXPECT_TRUE(std::isfinite(r.energy_mj));
    EXPECT_TRUE(std::isfinite(r.latency_ms));
    EXPECT_GT(r.energy_mj, 0.0);
    EXPECT_GT(r.latency_ms, 0.0);
  }
}

class GbufSweep : public ::testing::TestWithParam<int> {};

TEST_P(GbufSweep, EnergyFiniteAcrossBufferSizes) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  AcceleratorConfig cfg = base_config();
  cfg.g_buf_kb = GetParam();
  const auto r = sim.simulate_network(reference_model("Darts_v2").genotype,
                                      default_skeleton(), cfg);
  EXPECT_TRUE(std::isfinite(r.energy_mj));
  EXPECT_GT(r.energy_mj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GbufSweep,
                         ::testing::Values(108, 196, 256, 512, 1024));

}  // namespace
}  // namespace yoso
