#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/roofline.h"
#include "accel/tech.h"
#include "arch/network.h"
#include "arch/zoo.h"

namespace yoso {
namespace {

AcceleratorConfig config() {
  return AcceleratorConfig{16, 32, 512, 512, Dataflow::kOutputStationary};
}

TEST(Roofline, PeakAndBalance) {
  const TechnologyParams tech;
  const auto layers =
      extract_layers(reference_model("Darts_v2").genotype, default_skeleton());
  const auto s = roofline_analysis(layers, config(), tech);
  EXPECT_DOUBLE_EQ(s.peak_gmacs, 512 * tech.clock_ghz);
  EXPECT_NEAR(s.balance_intensity,
              s.peak_gmacs / (tech.dram_bytes_per_cycle * tech.clock_ghz),
              1e-12);
}

TEST(Roofline, SkipsPoolsCoversWeightLayers) {
  const auto layers =
      extract_layers(reference_model("PnasNet").genotype, default_skeleton());
  const auto s = roofline_analysis(layers, config());
  std::size_t weight_layers = 0;
  for (const auto& l : layers)
    if (l.macs() > 0) ++weight_layers;
  EXPECT_EQ(s.layers.size(), weight_layers);
}

TEST(Roofline, AchievedNeverExceedsAttainableMuch) {
  const auto layers =
      extract_layers(reference_model("EnasNet").genotype, default_skeleton());
  const auto s = roofline_analysis(layers, config());
  for (const auto& p : s.layers) {
    EXPECT_GT(p.attainable_gmacs, 0.0) << p.layer_name;
    // Small slack: the fill-overhead subtraction can push achieved slightly
    // around the bound on tiny layers, but never grossly above it.
    EXPECT_LE(p.achieved_gmacs, p.attainable_gmacs * 1.05) << p.layer_name;
  }
  EXPECT_GT(s.mean_efficiency, 0.1);
  EXPECT_LE(s.mean_efficiency, 1.05);
}

TEST(Roofline, MemoryBoundFlagConsistent) {
  const auto layers =
      extract_layers(reference_model("Darts_v1").genotype, default_skeleton());
  const auto s = roofline_analysis(layers, config());
  std::size_t flagged = 0;
  for (const auto& p : s.layers) {
    EXPECT_EQ(p.memory_bound, p.intensity < s.balance_intensity);
    flagged += p.memory_bound ? 1 : 0;
  }
  EXPECT_EQ(flagged, s.memory_bound_layers);
}

TEST(Roofline, FcLayerIsMemoryBound) {
  // A classifier layer reads each weight once: far below machine balance.
  Layer fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.in_h = 1;
  fc.in_w = 1;
  fc.in_c = 2048;
  fc.out_c = 10;
  fc.kernel = 1;
  fc.stride = 1;
  const auto s = roofline_analysis({fc}, config());
  ASSERT_EQ(s.layers.size(), 1u);
  EXPECT_TRUE(s.layers[0].memory_bound);
  EXPECT_LT(s.layers[0].intensity, 2.0);
}

TEST(Roofline, BigConvIsComputeBound) {
  Layer conv;
  conv.kind = LayerKind::kConv;
  conv.in_h = 32;
  conv.in_w = 32;
  conv.in_c = 96;
  conv.out_c = 96;
  conv.kernel = 3;
  conv.stride = 1;
  const auto s = roofline_analysis({conv}, config());
  ASSERT_EQ(s.layers.size(), 1u);
  EXPECT_FALSE(s.layers[0].memory_bound);
}

}  // namespace
}  // namespace yoso
