#include <gtest/gtest.h>
#include <memory>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/report.h"
#include "core/search.h"

namespace yoso {
namespace {

SearchResult small_search_result(const NetworkSkeleton& skeleton) {
  DesignSpace space;
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = 120, .seed = 3});
  AccurateEvaluator accurate(skeleton,
                             SystolicSimulator({}, SimFidelity::kAnalytical));
  SearchOptions opt;
  opt.iterations = 60;
  opt.top_n = 3;
  opt.reward = balanced_reward();
  opt.seed = 5;
  return YosoSearch(space, opt).run(fast, &accurate);
}

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    result_ = std::make_unique<SearchResult>(small_search_result(*skeleton_));
  }
  static void TearDownTestSuite() {
    result_.reset();
    skeleton_.reset();
  }
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<SearchResult> result_;
};

std::unique_ptr<NetworkSkeleton> ReportTest::skeleton_;
std::unique_ptr<SearchResult> ReportTest::result_;

TEST_F(ReportTest, ContainsAllSections) {
  const std::string md =
      render_design_report(*result_, *skeleton_, balanced_reward());
  for (const char* section :
       {"# YOSO co-design report", "## Solution", "## Accelerator",
        "## Energy breakdown", "## Network", "### Layers", "## Search"})
    EXPECT_NE(md.find(section), std::string::npos) << section;
}

TEST_F(ReportTest, ReportsConfigAndThresholds) {
  const std::string md =
      render_design_report(*result_, *skeleton_, balanced_reward());
  EXPECT_NE(md.find(result_->best->candidate.config.to_string()),
            std::string::npos);
  EXPECT_NE(md.find("9.0 mJ"), std::string::npos);
  EXPECT_NE(md.find("1.2 ms"), std::string::npos);
}

TEST_F(ReportTest, GenotypeBlockOptional) {
  ReportOptions opt;
  opt.include_genotype = false;
  const std::string md =
      render_design_report(*result_, *skeleton_, balanced_reward(), opt);
  EXPECT_EQ(md.find("normal="), std::string::npos);
  const std::string with =
      render_design_report(*result_, *skeleton_, balanced_reward());
  EXPECT_NE(with.find("normal="), std::string::npos);
}

TEST_F(ReportTest, LayerTableTruncates) {
  ReportOptions opt;
  opt.max_layers = 5;
  const std::string md =
      render_design_report(*result_, *skeleton_, balanced_reward(), opt);
  EXPECT_NE(md.find("more)"), std::string::npos);
}

TEST_F(ReportTest, NoLayerTableWhenDisabled) {
  ReportOptions opt;
  opt.include_layer_table = false;
  const std::string md =
      render_design_report(*result_, *skeleton_, balanced_reward(), opt);
  EXPECT_EQ(md.find("### Layers"), std::string::npos);
}

TEST(Report, ThrowsWithoutBest) {
  SearchResult empty;
  EXPECT_THROW(
      render_design_report(empty, default_skeleton(), balanced_reward()),
      std::invalid_argument);
}

}  // namespace
}  // namespace yoso
