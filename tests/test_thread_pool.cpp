#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/contract.h"

namespace yoso {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> marked(20, 0);
  pool.parallel_for(5, 15, [&](std::size_t i) { marked[i] = 1; });
  for (std::size_t i = 0; i < marked.size(); ++i)
    EXPECT_EQ(marked[i], (i >= 5 && i < 15) ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> out(64, 0);
  pool.parallel_for(0, out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 7, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReversedRangeViolatesContract) {
  // A reversed range is an upstream index-arithmetic bug, not an empty
  // loop; parallel_for refuses it instead of silently doing nothing.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(9, 3, [](std::size_t) {}),
               yoso::ContractViolation);
}

TEST(ThreadPool, EmptyFunctionViolatesContract) {
  ThreadPool pool(1);
  std::function<void(std::size_t)> empty;
  EXPECT_THROW(pool.parallel_for(0, 4, empty), yoso::ContractViolation);
}

TEST(ThreadPool, NestedParallelForViolatesContract) {
  // Before the contract, a nested parallel_for overwrote the in-flight job
  // and deadlocked the outer wait; now the inner call fails fast.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 8, [](std::size_t) {});
                                 }),
               yoso::ContractViolation);
}

TEST(ThreadPool, UsableAgainAfterContractViolation) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 8, [](std::size_t) {});
                                 }),
               yoso::ContractViolation);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 16, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 200, [&](std::size_t i) {
      if (i % 50 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Index 3 throws and is always claimed before the pool drains; higher
    // throwing indices (53, 103, ...) may be skipped but must never win.
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ThreadPool, InlineExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 4)
                                     throw std::invalid_argument("inline");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, UsableAgainAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 32, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10,
                    [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 17, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(4), 4u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // all hardware threads
}

// ------------------------------------------------------------ submit/wait

TEST(ThreadPoolSubmit, TicketWaitCompletesEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  ThreadPool::JobTicket ticket =
      pool.submit(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(ticket.valid());
  ticket.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolSubmit, ZeroWorkersRunsAtWait) {
  // With no workers nothing happens until wait() drains the job inline on
  // the caller — the pipeline degrades to serial, it never deadlocks.
  ThreadPool pool(0);
  std::atomic<int> count{0};
  ThreadPool::JobTicket ticket =
      pool.submit(0, 16, [&](std::size_t) { count.fetch_add(1); });
  ticket.wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolSubmit, EmptyRangeYieldsInvalidTicket) {
  ThreadPool pool(2);
  ThreadPool::JobTicket ticket = pool.submit(4, 4, [](std::size_t) {});
  EXPECT_FALSE(ticket.valid());
  ticket.wait();  // no-op, not a crash
}

TEST(ThreadPoolSubmit, WaitRethrowsLowestIndexException) {
  ThreadPool pool(2);
  ThreadPool::JobTicket ticket = pool.submit(0, 100, [](std::size_t i) {
    if (i % 25 == 2) throw std::runtime_error("sub " + std::to_string(i));
  });
  try {
    ticket.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sub 2");
  }
}

TEST(ThreadPoolSubmit, ParallelForWhileJobInFlight) {
  // The pipeline's shape: a submitted job overlaps a parallel_for on the
  // same pool (the coordinator's GP fan-out runs behind the feature job).
  ThreadPool pool(3);
  std::vector<std::atomic<int>> a(300);
  std::vector<std::atomic<int>> b(300);
  ThreadPool::JobTicket ticket =
      pool.submit(0, a.size(), [&](std::size_t i) { a[i].fetch_add(1); });
  pool.parallel_for(0, b.size(), [&](std::size_t i) { b[i].fetch_add(1); });
  ticket.wait();
  for (const auto& h : a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolSubmit, TwoTicketsInFlightBothComplete) {
  ThreadPool pool(2);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  ThreadPool::JobTicket t1 =
      pool.submit(0, 64, [&](std::size_t) { first.fetch_add(1); });
  ThreadPool::JobTicket t2 =
      pool.submit(0, 64, [&](std::size_t) { second.fetch_add(1); });
  t2.wait();
  t1.wait();
  EXPECT_EQ(first.load(), 64);
  EXPECT_EQ(second.load(), 64);
}

TEST(ThreadPoolSubmit, SubmitInsideBodyViolatesContract) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   (void)pool.submit(0, 4, [](std::size_t) {});
                                 }),
               yoso::ContractViolation);
}

TEST(ThreadPoolSubmit, DestructorWaitsForUnwaitedTicket) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    ThreadPool::JobTicket ticket =
        pool.submit(0, 128, [&](std::size_t) { count.fetch_add(1); });
    (void)ticket;  // dropped without wait(): the ticket dtor must drain it
  }
  EXPECT_EQ(count.load(), 128);
}

// ------------------------------------------------------------ scratch

TEST(ScratchArena, FrameRewindReusesMemory) {
  ScratchArena arena;
  double* first = nullptr;
  {
    ScratchArena::Frame frame(arena);
    first = arena.alloc<double>(100);
    ASSERT_NE(first, nullptr);
    first[0] = 1.0;
    first[99] = 2.0;
  }
  const std::size_t cap = arena.capacity_bytes();
  {
    ScratchArena::Frame frame(arena);
    double* again = arena.alloc<double>(100);
    EXPECT_EQ(again, first);  // rewound, so the same block is handed back
  }
  EXPECT_EQ(arena.capacity_bytes(), cap);  // no growth on reuse
}

TEST(ScratchArena, GrowsAcrossBlocksAndAligns) {
  ScratchArena arena;
  ScratchArena::Frame frame(arena);
  for (int i = 0; i < 50; ++i) {
    double* p = arena.alloc<double>(97);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);
    p[96] = static_cast<double>(i);  // touch the tail: the span is real
  }
  EXPECT_GE(arena.capacity_bytes(), 50u * 97u * sizeof(double));
}

TEST(ThreadPoolScratch, SlotsAreDistinctPerThread) {
  // Slot 0 is the coordinator; workers get 1..N.  Each concurrent body
  // records its slot — no two threads may share one at the same time, and
  // the coordinator participates, so every observed slot is in range.
  ThreadPool pool(3);
  EXPECT_EQ(pool.current_slot(), 0u);  // caller outside any body
  std::vector<std::atomic<int>> by_slot(pool.workers() + 1);
  pool.parallel_for(0, 64, [&](std::size_t) {
    const std::size_t slot = pool.current_slot();
    ASSERT_LT(slot, by_slot.size());
    by_slot[slot].fetch_add(1);
    double* p = pool.scratch().alloc<double>(8);  // per-slot arena is usable
    p[7] = static_cast<double>(slot);
  });
  int total = 0;
  for (const auto& s : by_slot) total += s.load();
  EXPECT_EQ(total, 64);
}

}  // namespace
}  // namespace yoso
