#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/contract.h"

namespace yoso {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> marked(20, 0);
  pool.parallel_for(5, 15, [&](std::size_t i) { marked[i] = 1; });
  for (std::size_t i = 0; i < marked.size(); ++i)
    EXPECT_EQ(marked[i], (i >= 5 && i < 15) ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> out(64, 0);
  pool.parallel_for(0, out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 7, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReversedRangeViolatesContract) {
  // A reversed range is an upstream index-arithmetic bug, not an empty
  // loop; parallel_for refuses it instead of silently doing nothing.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(9, 3, [](std::size_t) {}),
               yoso::ContractViolation);
}

TEST(ThreadPool, EmptyFunctionViolatesContract) {
  ThreadPool pool(1);
  std::function<void(std::size_t)> empty;
  EXPECT_THROW(pool.parallel_for(0, 4, empty), yoso::ContractViolation);
}

TEST(ThreadPool, NestedParallelForViolatesContract) {
  // Before the contract, a nested parallel_for overwrote the in-flight job
  // and deadlocked the outer wait; now the inner call fails fast.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 8, [](std::size_t) {});
                                 }),
               yoso::ContractViolation);
}

TEST(ThreadPool, UsableAgainAfterContractViolation) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 8, [](std::size_t) {});
                                 }),
               yoso::ContractViolation);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 16, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 200, [&](std::size_t i) {
      if (i % 50 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Index 3 throws and is always claimed before the pool drains; higher
    // throwing indices (53, 103, ...) may be skipped but must never win.
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ThreadPool, InlineExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 4)
                                     throw std::invalid_argument("inline");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, UsableAgainAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 32, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10,
                    [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 17, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(4), 4u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // all hardware threads
}

}  // namespace
}  // namespace yoso
