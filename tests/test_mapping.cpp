#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/mapping.h"
#include "accel/tech.h"
#include "arch/network.h"

namespace yoso {
namespace {

Layer conv_layer(int hw, int cin, int cout, int k = 3, int stride = 1) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.in_h = hw;
  l.in_w = hw;
  l.in_c = cin;
  l.out_c = cout;
  l.kernel = k;
  l.stride = stride;
  return l;
}

Layer dw_layer(int hw, int c, int k = 3) {
  Layer l;
  l.kind = LayerKind::kDwConv;
  l.in_h = hw;
  l.in_w = hw;
  l.in_c = c;
  l.out_c = c;
  l.kernel = k;
  l.stride = 1;
  return l;
}

AcceleratorConfig config(Dataflow df, int rows = 16, int cols = 16,
                         int gbuf = 512, int rbuf = 256) {
  return AcceleratorConfig{rows, cols, gbuf, rbuf, df};
}

TEST(EffFit, Properties) {
  EXPECT_DOUBLE_EQ(eff_fit(16, 16), 1.0);
  EXPECT_DOUBLE_EQ(eff_fit(8, 16), 0.5);
  EXPECT_DOUBLE_EQ(eff_fit(24, 16), 0.75);  // 24 over 2 passes of 16
  EXPECT_DOUBLE_EQ(eff_fit(0, 16), 0.0);
  EXPECT_DOUBLE_EQ(eff_fit(16, 0), 0.0);
  // Never exceeds 1.
  for (int n = 1; n < 100; ++n) EXPECT_LE(eff_fit(n, 16), 1.0);
}

TEST(Mapping, UtilizationBounded) {
  for (int d = 0; d < kNumDataflows; ++d) {
    const auto m = map_layer(conv_layer(32, 48, 48),
                             config(static_cast<Dataflow>(d)), {});
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
  }
}

TEST(Mapping, MacsMatchLayerModel) {
  const Layer l = conv_layer(16, 32, 64);
  const auto m = map_layer(l, config(Dataflow::kWeightStationary), {});
  EXPECT_DOUBLE_EQ(m.macs, static_cast<double>(l.macs()));
}

TEST(Mapping, ComputeCyclesScaleWithArray) {
  const Layer l = conv_layer(32, 48, 96);
  const auto small = map_layer(l, config(Dataflow::kOutputStationary, 8, 8), {});
  const auto big = map_layer(l, config(Dataflow::kOutputStationary, 16, 32), {});
  EXPECT_GT(small.compute_cycles, big.compute_cycles);
}

TEST(Mapping, DramTrafficAtLeastCompulsory) {
  const Layer l = conv_layer(32, 48, 96);
  const TechnologyParams tech;
  const double compulsory =
      (static_cast<double>(l.in_h) * l.in_w * l.in_c +
       static_cast<double>(l.params()) +
       static_cast<double>(l.output_elements())) *
      tech.bytes_per_element;
  for (int d = 0; d < kNumDataflows; ++d) {
    const auto m = map_layer(l, config(static_cast<Dataflow>(d)), tech);
    EXPECT_GE(m.dram_bytes, compulsory * 0.999);
  }
}

TEST(Mapping, LargeBufferReachesCompulsoryTraffic) {
  const Layer l = conv_layer(32, 24, 24);
  const TechnologyParams tech;
  const auto m = map_layer(
      l, config(Dataflow::kWeightStationary, 16, 16, 1024, 256), tech);
  const double compulsory =
      (static_cast<double>(l.in_h) * l.in_w * l.in_c +
       static_cast<double>(l.params()) +
       static_cast<double>(l.output_elements())) *
      tech.bytes_per_element;
  EXPECT_NEAR(m.dram_bytes, compulsory, compulsory * 0.01);
  EXPECT_FALSE(m.buffer_overflow);
}

TEST(Mapping, SmallerBufferNeverReducesDram) {
  const Layer l = conv_layer(32, 96, 192);
  for (int d = 0; d < kNumDataflows; ++d) {
    const auto big =
        map_layer(l, config(static_cast<Dataflow>(d), 16, 16, 1024), {});
    const auto small =
        map_layer(l, config(static_cast<Dataflow>(d), 16, 16, 108), {});
    EXPECT_GE(small.dram_bytes, big.dram_bytes * 0.999)
        << dataflow_name(static_cast<Dataflow>(d));
  }
}

TEST(Mapping, DepthwisePoorOnWeightStationary) {
  // WS folds the reduction dim onto rows; a 3x3 depthwise only has 9.
  const auto ws = map_layer(dw_layer(32, 48),
                            config(Dataflow::kWeightStationary, 16, 16), {});
  const auto os = map_layer(dw_layer(32, 48),
                            config(Dataflow::kOutputStationary, 16, 16), {});
  EXPECT_LT(ws.utilization, os.utilization);
}

TEST(Mapping, NoLocalReuseHasNoRegisterTraffic) {
  const auto m =
      map_layer(conv_layer(16, 32, 32), config(Dataflow::kNoLocalReuse), {});
  EXPECT_DOUBLE_EQ(m.rbuf_bytes, 0.0);
  const auto ws = map_layer(conv_layer(16, 32, 32),
                            config(Dataflow::kWeightStationary), {});
  EXPECT_GT(ws.rbuf_bytes, 0.0);
}

TEST(Mapping, NoLocalReuseMovesMoreGbufBytes) {
  const Layer l = conv_layer(32, 48, 96);
  const auto nlr = map_layer(l, config(Dataflow::kNoLocalReuse), {});
  const auto ws = map_layer(l, config(Dataflow::kWeightStationary), {});
  EXPECT_GT(nlr.gbuf_bytes, ws.gbuf_bytes);
}

TEST(Mapping, BiggerRegisterBufferReducesGbufTraffic) {
  const Layer l = conv_layer(32, 48, 96, 5);
  const auto small =
      map_layer(l, config(Dataflow::kWeightStationary, 16, 16, 512, 64), {});
  const auto big =
      map_layer(l, config(Dataflow::kWeightStationary, 16, 16, 512, 1024), {});
  EXPECT_LT(big.gbuf_bytes, small.gbuf_bytes);
}

TEST(Mapping, TotalCyclesCoverComputeAndStalls) {
  const Layer l = conv_layer(32, 48, 96);
  for (int d = 0; d < kNumDataflows; ++d) {
    const auto m = map_layer(l, config(static_cast<Dataflow>(d)), {});
    EXPECT_GE(m.total_cycles, m.compute_cycles);
    EXPECT_GE(m.stall_cycles, 0.0);
    EXPECT_GT(m.total_cycles, 0.0);
  }
}

TEST(Mapping, TileFitsBufferWhenNotOverflowing) {
  const Layer l = conv_layer(32, 96, 192);
  const TechnologyParams tech;
  const auto cfg = config(Dataflow::kOutputStationary, 16, 16, 196);
  const auto m = map_layer(l, cfg, tech);
  if (!m.buffer_overflow) {
    const int in_rows =
        std::min((m.tile.t_h - 1) * l.stride + l.kernel, l.in_h);
    const double ti = static_cast<double>(in_rows) * l.in_w * m.tile.t_ci *
                      tech.bytes_per_element;
    const double tw = 9.0 * m.tile.t_ci * m.tile.t_co *
                      tech.bytes_per_element;
    const double to = static_cast<double>(m.tile.t_h) * l.out_w() *
                      m.tile.t_co * tech.bytes_per_element;
    EXPECT_LE(2.0 * (ti + tw + to), cfg.g_buf_kb * 1024.0);
  }
}

TEST(Mapping, PoolLayerMapped) {
  Layer l;
  l.kind = LayerKind::kPool;
  l.in_h = 16;
  l.in_w = 16;
  l.in_c = 32;
  l.out_c = 32;
  l.kernel = 3;
  l.stride = 2;
  const auto m = map_layer(l, config(Dataflow::kOutputStationary), {});
  EXPECT_DOUBLE_EQ(m.macs, 0.0);
  EXPECT_GT(m.dram_bytes, 0.0);
  EXPECT_GT(m.total_cycles, 0.0);
  EXPECT_DOUBLE_EQ(m.rbuf_bytes, 0.0);
}

TEST(Mapping, FullyConnectedMapped) {
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.in_h = 1;
  l.in_w = 1;
  l.in_c = 256;
  l.out_c = 10;
  l.kernel = 1;
  l.stride = 1;
  const auto m = map_layer(l, config(Dataflow::kWeightStationary), {});
  EXPECT_DOUBLE_EQ(m.macs, 2560.0);
  EXPECT_GT(m.dram_bytes, 2560.0);  // weights dominate
}

class DataflowSweep : public ::testing::TestWithParam<int> {};

TEST_P(DataflowSweep, MappingInvariantsAcrossShapes) {
  const auto df = static_cast<Dataflow>(GetParam());
  const TechnologyParams tech;
  for (int hw : {8, 16, 32}) {
    for (int c : {16, 48, 96}) {
      for (int k : {1, 3, 5}) {
        const auto m = map_layer(conv_layer(hw, c, c, k), config(df), tech);
        EXPECT_GT(m.utilization, 0.0);
        EXPECT_LE(m.utilization, 1.0);
        EXPECT_GE(m.dram_bytes, 0.0);
        EXPECT_GE(m.gbuf_bytes, m.dram_bytes);  // dram transits gbuf
        EXPECT_GE(m.total_cycles, m.compute_cycles);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, DataflowSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace yoso
