#include <gtest/gtest.h>
#include <memory>

#include "accel/config.h"
#include "accel/simulator.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/two_stage.h"

namespace yoso {
namespace {

/// A deliberately tiny config space keeps exhaustive enumeration fast.
ConfigSpace tiny_space() {
  ConfigSpace cs;
  cs.pe_shapes = {{8, 8}, {16, 32}};
  cs.g_buf_kb_options = {108, 512};
  cs.r_buf_byte_options = {64, 512};
  return cs;
}

class TwoStageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>(tiny_space());
    evaluator_ = std::make_unique<AccurateEvaluator>(
        default_skeleton(), SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    evaluator_.reset();
    space_.reset();
  }
  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<AccurateEvaluator> evaluator_;
};

std::unique_ptr<DesignSpace> TwoStageTest::space_;
std::unique_ptr<AccurateEvaluator> TwoStageTest::evaluator_;

TEST_F(TwoStageTest, EvaluatesEveryConfiguration) {
  const auto row = two_stage_best_config(reference_model("Darts_v1"), *space_,
                                         *evaluator_, balanced_reward());
  EXPECT_EQ(row.configs_evaluated, space_->config_space().size());
  EXPECT_EQ(row.name, "Darts_v1");
  EXPECT_DOUBLE_EQ(row.paper_test_error, 3.0);
}

TEST_F(TwoStageTest, KeepsTheGenotypeFixed) {
  const auto& model = reference_model("Darts_v2");
  const auto row =
      two_stage_best_config(model, *space_, *evaluator_, balanced_reward());
  EXPECT_TRUE(row.design.genotype == model.genotype);
}

TEST_F(TwoStageTest, ChosenConfigIsRewardOptimal) {
  const auto& model = reference_model("EnasNet");
  const RewardParams reward = balanced_reward();
  const auto row = two_stage_best_config(model, *space_, *evaluator_, reward);
  // Exhaustively verify no config beats the chosen one within its
  // feasibility class.
  for (const AcceleratorConfig& config : space_->config_space().enumerate()) {
    const EvalResult r =
        evaluator_->evaluate(CandidateDesign{model.genotype, config});
    if (row.feasible && !reward.feasible(r)) continue;
    if (!row.feasible && reward.feasible(r))
      FAIL() << "feasible config existed but was not chosen";
    EXPECT_LE(reward.compute(r), row.reward + 1e-9)
        << config.to_string();
  }
}

TEST_F(TwoStageTest, PrefersFeasibleOverHigherScoringInfeasible) {
  // With a crushing latency threshold, only the biggest array may pass.
  RewardParams reward = balanced_reward();
  reward.t_lat_ms = 1.5;
  reward.t_eer_mj = 50.0;
  const auto row = two_stage_best_config(reference_model("Darts_v1"), *space_,
                                         *evaluator_, reward);
  if (row.feasible) {
    EXPECT_LE(row.result.latency_ms, reward.t_lat_ms);
  }
}

TEST_F(TwoStageTest, BaselineCoversAllSixModels) {
  const auto rows =
      two_stage_baseline(*space_, *evaluator_, balanced_reward());
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_GT(row.result.energy_mj, 0.0);
    EXPECT_GT(row.result.latency_ms, 0.0);
    EXPECT_GT(row.reward, 0.0);
    EXPECT_EQ(row.configs_evaluated, space_->config_space().size());
  }
}

TEST_F(TwoStageTest, DifferentRewardsCanPickDifferentConfigs) {
  const auto& model = reference_model("PnasNet");
  const auto row_lat = two_stage_best_config(model, *space_, *evaluator_,
                                             latency_opt_reward());
  const auto row_eer = two_stage_best_config(model, *space_, *evaluator_,
                                             energy_opt_reward());
  // Both must be valid configs of the space (values, not identity).
  EXPECT_NO_THROW(space_->config_space().encode(row_lat.design.config));
  EXPECT_NO_THROW(space_->config_space().encode(row_eer.design.config));
  // The latency-optimised pick must not be slower than the energy pick.
  EXPECT_LE(row_lat.result.latency_ms, row_eer.result.latency_ms + 1e-9);
}

}  // namespace
}  // namespace yoso
