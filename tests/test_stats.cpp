#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace yoso {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(min_value(empty), std::invalid_argument);
  EXPECT_THROW(max_value(empty), std::invalid_argument);
}

TEST(Stats, MseAndRmse) {
  const std::vector<double> p = {1.0, 2.0, 3.0};
  const std::vector<double> t = {1.0, 4.0, 3.0};
  EXPECT_NEAR(mse(p, t), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(rmse(p, t), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Stats, MseSizeMismatchThrows) {
  const std::vector<double> p = {1.0};
  const std::vector<double> t = {1.0, 2.0};
  EXPECT_THROW(mse(p, t), std::invalid_argument);
}

TEST(Stats, MeanRelativeErrorSkipsZeroTruth) {
  const std::vector<double> p = {2.0, 5.0};
  const std::vector<double> t = {4.0, 0.0};
  EXPECT_NEAR(mean_relative_error(p, t), 0.5, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateReturnsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {1.0, 8.0, 27.0, 64.0, 125.0};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, RankWithTiesAverages) {
  const std::vector<double> x = {10.0, 20.0, 20.0, 30.0};
  const auto r = rank_with_ties(x);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, KendallTauPerfect) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(kendall_tau(x, y), 1.0, 1e-12);
}

TEST(Stats, KendallTauReversed) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(kendall_tau(x, y), -1.0, 1e-12);
}

TEST(Stats, RunningStatMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStat rs;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    xs.push_back(v);
    rs.add(v);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

TEST(Stats, MovingAverageInitAndDecay) {
  MovingAverage ma(0.9);
  EXPECT_TRUE(ma.empty());
  ma.add(10.0);
  EXPECT_FALSE(ma.empty());
  EXPECT_DOUBLE_EQ(ma.value(), 10.0);
  ma.add(0.0);
  EXPECT_DOUBLE_EQ(ma.value(), 9.0);
}

TEST(Stats, MovingAverageConvergesToConstant) {
  MovingAverage ma(0.5);
  for (int i = 0; i < 60; ++i) ma.add(4.0);
  EXPECT_NEAR(ma.value(), 4.0, 1e-9);
}

class CorrelationNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationNoiseSweep, PearsonDecreasesWithNoise) {
  const double sigma = GetParam();
  Rng rng(77);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    x.push_back(v);
    y.push_back(v + rng.normal(0.0, sigma));
  }
  const double r = pearson(x, y);
  // With signal std ~2.9, these bounds are loose but order-preserving.
  if (sigma <= 0.1) {
    EXPECT_GT(r, 0.99);
  }
  if (sigma >= 10.0) {
    EXPECT_LT(r, 0.6);
  }
  EXPECT_GT(r, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Noise, CorrelationNoiseSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

}  // namespace
}  // namespace yoso
