#include <cmath>
#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "predictor/models.h"
#include "predictor/regressor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace yoso {
namespace {

/// y = 3 x0 - 2 x1 + 1 + noise
struct LinearData {
  Matrix x;
  std::vector<double> y;
};

LinearData make_linear(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  LinearData d;
  d.x = Matrix(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    d.x(r, 0) = rng.uniform(-2.0, 2.0);
    d.x(r, 1) = rng.uniform(-2.0, 2.0);
    d.y.push_back(3.0 * d.x(r, 0) - 2.0 * d.x(r, 1) + 1.0 +
                  rng.normal(0.0, noise));
  }
  return d;
}

/// y = sin(2 x0) + x1^2
LinearData make_nonlinear(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  LinearData d;
  d.x = Matrix(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    d.x(r, 0) = rng.uniform(-2.0, 2.0);
    d.x(r, 1) = rng.uniform(-2.0, 2.0);
    d.y.push_back(std::sin(2.0 * d.x(r, 0)) + d.x(r, 1) * d.x(r, 1));
  }
  return d;
}

TEST(Standardizer, ZeroMeanUnitStd) {
  const auto d = make_linear(200, 0.0, 1);
  Standardizer s;
  s.fit(d.x);
  const Matrix t = s.transform(d.x);
  for (std::size_t c = 0; c < t.cols(); ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      sum += t(r, c);
      sq += t(r, c) * t(r, c);
    }
    EXPECT_NEAR(sum / t.rows(), 0.0, 1e-9);
    EXPECT_NEAR(sq / t.rows(), 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantFeatureSafe) {
  Matrix x(10, 1, 5.0);
  Standardizer s;
  s.fit(x);
  const auto row = s.transform_row(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Standardizer, UnfittedThrows) {
  Standardizer s;
  EXPECT_THROW(s.transform(Matrix(1, 1)), std::logic_error);
}

TEST(LinearRegressor, RecoversExactLinearModel) {
  const auto d = make_linear(100, 0.0, 2);
  LinearRegressor lin;
  lin.fit(d.x, d.y);
  const auto test = make_linear(20, 0.0, 3);
  const auto pred = lin.predict_all(test.x);
  EXPECT_LT(mse(pred, test.y), 1e-10);
}

TEST(LinearRegressor, UnfittedThrows) {
  LinearRegressor lin;
  EXPECT_THROW(lin.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RidgeRegressor, ShrinksButStillPredicts) {
  const auto d = make_linear(100, 0.1, 4);
  LinearRegressor ridge(5.0, "ridge");
  ridge.fit(d.x, d.y);
  const auto test = make_linear(30, 0.0, 5);
  EXPECT_LT(mse(ridge.predict_all(test.x), test.y), 0.5);
  EXPECT_EQ(ridge.name(), "ridge");
}

TEST(KnnRegressor, InterpolatesLocally) {
  const auto d = make_nonlinear(400, 6);
  KnnRegressor knn(4);
  knn.fit(d.x, d.y);
  const auto test = make_nonlinear(50, 7);
  EXPECT_LT(mse(knn.predict_all(test.x), test.y), 0.15);
}

TEST(KnnRegressor, KLargerThanDatasetHandled) {
  KnnRegressor knn(50);
  Matrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  const std::vector<double> y = {0.0, 1.0, 2.0};
  knn.fit(x, y);
  // Distance-weighted mean of all three points.
  const double p = knn.predict(std::vector<double>{1.0});
  EXPECT_NEAR(p, 1.0, 0.3);
}

TEST(DecisionTree, FitsPiecewiseStructure) {
  const auto d = make_nonlinear(500, 8);
  DecisionTreeRegressor tree(10, 2);
  tree.fit(d.x, d.y);
  const auto test = make_nonlinear(60, 9);
  EXPECT_LT(mse(tree.predict_all(test.x), test.y), 0.25);
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  // With min_samples_leaf == n the tree must be a single leaf = mean.
  const auto d = make_linear(20, 0.0, 10);
  DecisionTreeRegressor tree(10, 20);
  tree.fit(d.x, d.y);
  const double expected = mean(d.y);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.0, 0.0}), expected, 1e-9);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  Rng noise_rng(11);
  auto d = make_nonlinear(400, 12);
  for (auto& v : d.y) v += noise_rng.normal(0.0, 0.3);
  DecisionTreeRegressor tree(14, 1);
  RandomForestRegressor forest(30, 14, 1);
  tree.fit(d.x, d.y);
  forest.fit(d.x, d.y);
  const auto test = make_nonlinear(80, 13);
  const double mse_tree = mse(tree.predict_all(test.x), test.y);
  const double mse_forest = mse(forest.predict_all(test.x), test.y);
  EXPECT_LT(mse_forest, mse_tree);
}

TEST(AllModels, RejectBadShapes) {
  Matrix x(3, 2);
  std::vector<double> y = {1.0, 2.0};  // mismatched
  LinearRegressor lin;
  KnnRegressor knn;
  DecisionTreeRegressor tree;
  RandomForestRegressor forest;
  GpRegressor gp;
  EXPECT_THROW(knn.fit(x, y), std::invalid_argument);
  EXPECT_THROW(tree.fit(x, y), std::invalid_argument);
  EXPECT_THROW(forest.fit(x, y), std::invalid_argument);
  EXPECT_THROW(gp.fit(x, y), std::invalid_argument);
}

TEST(GpRegressor, InterpolatesTrainingPoints) {
  const auto d = make_nonlinear(60, 14);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  for (std::size_t r = 0; r < 10; ++r)
    EXPECT_NEAR(gp.predict(d.x.row(r)), d.y[r], 0.05);
}

TEST(GpRegressor, GeneralisesSmoothFunction) {
  const auto d = make_nonlinear(300, 15);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const auto test = make_nonlinear(50, 16);
  EXPECT_LT(mse(gp.predict_all(test.x), test.y), 0.02);
}

TEST(GpRegressor, VarianceSmallAtTrainLargeFar) {
  const auto d = make_linear(50, 0.0, 17);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const auto [mu_train, var_train] = gp.predict_with_variance(d.x.row(0));
  const std::vector<double> far = {50.0, -50.0};
  const auto [mu_far, var_far] = gp.predict_with_variance(far);
  EXPECT_LT(var_train, var_far);
  EXPECT_GT(var_far, 0.0);
  // Mean-only prediction equals the mean from the variance path.
  EXPECT_NEAR(gp.predict(d.x.row(0)), mu_train, 1e-9);
}

TEST(GpRegressor, LogMarginalLikelihoodFinite) {
  const auto d = make_nonlinear(80, 18);
  GpRegressor gp;
  gp.fit(d.x, d.y);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
  EXPECT_GT(gp.hyper_params().lengthscale, 0.0);
  EXPECT_GT(gp.hyper_params().noise_variance, 0.0);
}

TEST(GpRegressor, FixedHyperParamsMode) {
  GpHyperParams hp;
  hp.lengthscale = 1.0;
  hp.signal_variance = 2.0;
  hp.noise_variance = 1e-4;
  GpRegressor gp(hp, /*tune=*/false);
  const auto d = make_linear(40, 0.0, 19);
  gp.fit(d.x, d.y);
  EXPECT_DOUBLE_EQ(gp.hyper_params().lengthscale, 1.0);
  EXPECT_DOUBLE_EQ(gp.hyper_params().signal_variance, 2.0);
}

TEST(GpRegressor, UnfittedThrows) {
  GpRegressor gp;
  EXPECT_THROW(gp.predict(std::vector<double>{0.0}), std::logic_error);
}

// The Fig-4 headline at miniature scale: GP beats the other five families
// on a smooth multi-dimensional target.
TEST(Fig4Property, GpWinsOnSmoothTarget) {
  const auto train = make_nonlinear(250, 20);
  const auto test = make_nonlinear(60, 21);
  GpRegressor gp;
  gp.fit(train.x, train.y);
  const double gp_mse = mse(gp.predict_all(test.x), test.y);

  LinearRegressor lin;
  LinearRegressor ridge(1.0, "ridge");
  KnnRegressor knn(6);
  DecisionTreeRegressor tree(12, 3);
  RandomForestRegressor forest(25, 12, 2);
  for (Regressor* r : std::initializer_list<Regressor*>{&lin, &ridge, &knn,
                                                        &tree, &forest}) {
    r->fit(train.x, train.y);
    EXPECT_GT(mse(r->predict_all(test.x), test.y), gp_mse) << r->name();
  }
}

class NoiseLevelSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseLevelSweep, GpStableUnderTargetNoise) {
  Rng rng(22);
  auto d = make_nonlinear(150, 23);
  for (auto& v : d.y) v += rng.normal(0.0, GetParam());
  GpRegressor gp;
  gp.fit(d.x, d.y);
  const auto clean = make_nonlinear(40, 24);
  const double err = mse(gp.predict_all(clean.x), clean.y);
  EXPECT_LT(err, 0.08 + 2.5 * GetParam() * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseLevelSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

}  // namespace
}  // namespace yoso
