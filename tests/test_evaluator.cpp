#include <gtest/gtest.h>
#include <memory>

#include "accel/config.h"
#include "accel/simulator.h"
#include "accel/tech.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"

namespace yoso {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    simulator_ = std::make_unique<SystolicSimulator>(TechnologyParams{}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<FastEvaluator>(*space_, *skeleton_, *simulator_,
                              FastEvaluatorOptions{.predictor_samples = 200, .seed = 3});
    accurate_ = std::make_unique<AccurateEvaluator>(*skeleton_);
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    fast_.reset();
    simulator_.reset();
    skeleton_.reset();
    space_.reset();
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<SystolicSimulator> simulator_;
  static std::unique_ptr<FastEvaluator> fast_;
  static std::unique_ptr<AccurateEvaluator> accurate_;
};

std::unique_ptr<DesignSpace> EvaluatorTest::space_;
std::unique_ptr<NetworkSkeleton> EvaluatorTest::skeleton_;
std::unique_ptr<SystolicSimulator> EvaluatorTest::simulator_;
std::unique_ptr<FastEvaluator> EvaluatorTest::fast_;
std::unique_ptr<AccurateEvaluator> EvaluatorTest::accurate_;

TEST_F(EvaluatorTest, FastEvaluatorSaneRanges) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const CandidateDesign c = space_->random_candidate(rng);
    const EvalResult r = fast_->evaluate(c);
    EXPECT_GT(r.accuracy, 0.5);
    EXPECT_LT(r.accuracy, 1.0);
    EXPECT_GT(r.latency_ms, 0.0);
    EXPECT_GT(r.energy_mj, 0.0);
    EXPECT_LT(r.energy_mj, 100.0);
  }
}

TEST_F(EvaluatorTest, FastTracksAccurateOrdering) {
  // The fast evaluator must broadly agree with the accurate one on which of
  // two very different designs is cheaper.
  Rng rng(2);
  CandidateDesign small = space_->random_candidate(rng);
  small.config = AcceleratorConfig{16, 32, 512, 512,
                                   Dataflow::kOutputStationary};
  CandidateDesign big = small;
  big.config = AcceleratorConfig{8, 8, 108, 64, Dataflow::kNoLocalReuse};
  const EvalResult fs = fast_->evaluate(small);
  const EvalResult fb = fast_->evaluate(big);
  const EvalResult as = accurate_->evaluate(small);
  const EvalResult ab = accurate_->evaluate(big);
  EXPECT_EQ(fs.latency_ms < fb.latency_ms, as.latency_ms < ab.latency_ms);
}

TEST_F(EvaluatorTest, AccurateMatchesSimulatorDirectly) {
  Rng rng(3);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult r = accurate_->evaluate(c);
  const SimulationResult sim =
      accurate_->simulator().simulate_network(c.genotype, *skeleton_,
                                              c.config);
  EXPECT_DOUBLE_EQ(r.latency_ms, sim.latency_ms);
  EXPECT_DOUBLE_EQ(r.energy_mj, sim.energy_mj);
}

TEST_F(EvaluatorTest, AccurateAccuracyIsFullTraining) {
  Rng rng(4);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult r = accurate_->evaluate(c);
  AccuracyModel model(*skeleton_);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0 - model.test_error(c.genotype) / 100.0);
}

TEST_F(EvaluatorTest, FastAccuracyIsHypernetProxy) {
  Rng rng(5);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult r = fast_->evaluate(c);
  EXPECT_DOUBLE_EQ(r.accuracy,
                   fast_->accuracy_model().hypernet_accuracy(c.genotype));
}

TEST_F(EvaluatorTest, ConstructionFromPrecollectedSamples) {
  Rng rng(6);
  const auto samples = collect_samples(120, *simulator_,
                                       space_->config_space(), *skeleton_,
                                       rng);
  FastEvaluator fast2(*skeleton_, samples);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult r = fast2.evaluate(c);
  EXPECT_GT(r.energy_mj, 0.0);
}

TEST_F(EvaluatorTest, EvaluationIsDeterministic) {
  Rng rng(7);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult r1 = fast_->evaluate(c);
  const EvalResult r2 = fast_->evaluate(c);
  EXPECT_DOUBLE_EQ(r1.accuracy, r2.accuracy);
  EXPECT_DOUBLE_EQ(r1.energy_mj, r2.energy_mj);
  EXPECT_DOUBLE_EQ(r1.latency_ms, r2.latency_ms);
}

}  // namespace
}  // namespace yoso
