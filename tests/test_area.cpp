#include <gtest/gtest.h>

#include "accel/area.h"
#include "accel/config.h"

namespace yoso {
namespace {

AcceleratorConfig config(int rows, int cols, int gbuf, int rbuf) {
  return AcceleratorConfig{rows, cols, gbuf, rbuf,
                           Dataflow::kOutputStationary};
}

TEST(Area, BreakdownSumsToTotal) {
  const auto a = estimate_area(config(16, 32, 512, 256));
  EXPECT_NEAR(a.total_mm2,
              a.pe_mm2 + a.rbuf_mm2 + a.gbuf_mm2 + a.mux_mm2 + a.routing_mm2,
              1e-12);
  EXPECT_GT(a.total_mm2, 0.0);
  EXPECT_DOUBLE_EQ(total_area_mm2(config(16, 32, 512, 256)), a.total_mm2);
}

TEST(Area, MonotoneInEveryAxis) {
  const double base = total_area_mm2(config(8, 8, 108, 64));
  EXPECT_GT(total_area_mm2(config(16, 8, 108, 64)), base);
  EXPECT_GT(total_area_mm2(config(8, 16, 108, 64)), base);
  EXPECT_GT(total_area_mm2(config(8, 8, 512, 64)), base);
  EXPECT_GT(total_area_mm2(config(8, 8, 108, 512)), base);
}

TEST(Area, PlausibleMagnitudes) {
  // A 16x32 array with 512 KB SRAM at 28 nm-class densities should land in
  // single-digit mm^2 — the size class of published edge accelerators.
  const double a = total_area_mm2(config(16, 32, 512, 512));
  EXPECT_GT(a, 0.5);
  EXPECT_LT(a, 10.0);
  const double tiny = total_area_mm2(config(8, 8, 108, 64));
  EXPECT_GT(tiny, 0.05);
  EXPECT_LT(tiny, 2.0);
}

TEST(Area, PeArrayDominatesWhenBuffersSmall) {
  const auto a = estimate_area(config(16, 32, 108, 64));
  EXPECT_GT(a.pe_mm2, a.gbuf_mm2 * 0.5);
}

TEST(Area, SramDominatesAtMaxBuffer) {
  const auto a = estimate_area(config(8, 8, 1024, 64));
  EXPECT_GT(a.gbuf_mm2, a.pe_mm2);
}

TEST(Area, CustomParamsScale) {
  AreaParams params;
  params.pe_um2 *= 2.0;
  const auto base = estimate_area(config(16, 16, 256, 256));
  const auto scaled = estimate_area(config(16, 16, 256, 256), params);
  EXPECT_NEAR(scaled.pe_mm2, 2.0 * base.pe_mm2, 1e-12);
}

TEST(Area, RoutingOverheadFraction) {
  AreaParams params;
  params.routing_overhead = 0.0;
  const auto a = estimate_area(config(16, 16, 256, 256), params);
  EXPECT_DOUBLE_EQ(a.routing_mm2, 0.0);
}

}  // namespace
}  // namespace yoso
