#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "nn/dataset.h"
#include "nn/metrics.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

Tensor logits_for(const std::vector<int>& predictions, int classes) {
  Tensor t({static_cast<int>(predictions.size()), classes});
  for (std::size_t b = 0; b < predictions.size(); ++b)
    t.at2(static_cast<int>(b), predictions[b]) = 5.0f;
  return t;
}

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  // predictions: 0,1,2,0; truths: 0,1,1,2
  cm.add_batch(logits_for({0, 1, 2, 0}, 3), {0, 1, 1, 2});
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.at(0, 0), 1);
  EXPECT_EQ(cm.at(1, 1), 1);
  EXPECT_EQ(cm.at(1, 2), 1);
  EXPECT_EQ(cm.at(2, 0), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
}

TEST(ConfusionMatrixTest, RecallAndPrecision) {
  ConfusionMatrix cm(2);
  // truths:      0 0 0 1
  // predictions: 0 0 1 1
  cm.add_batch(logits_for({0, 0, 1, 1}, 2), {0, 0, 0, 1});
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
}

TEST(ConfusionMatrixTest, AbsentClassZeroRecall) {
  ConfusionMatrix cm(3);
  cm.add_batch(logits_for({0}, 3), {0});
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
}

TEST(ConfusionMatrixTest, WorstConfusionFindsHotOffDiagonal) {
  ConfusionMatrix cm(3);
  cm.add_batch(logits_for({2, 2, 2, 1}, 3), {0, 0, 0, 0});
  const auto [truth, predicted] = cm.worst_confusion();
  EXPECT_EQ(truth, 0);
  EXPECT_EQ(predicted, 2);
}

TEST(ConfusionMatrixTest, Validation) {
  EXPECT_THROW(ConfusionMatrix(1), std::invalid_argument);
  ConfusionMatrix cm(3);
  EXPECT_THROW(cm.add_batch(logits_for({0}, 2), {0}),
               std::invalid_argument);
  EXPECT_THROW(cm.add_batch(logits_for({0}, 3), {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(cm.add_batch(logits_for({0}, 3), {7}),
               std::invalid_argument);
}

TEST(TopK, KnownValues) {
  Tensor logits({2, 4});
  // Sample 0: logits 3,2,1,0 — truth 2 is third best.
  logits.at2(0, 0) = 3;
  logits.at2(0, 1) = 2;
  logits.at2(0, 2) = 1;
  logits.at2(0, 3) = 0;
  // Sample 1: truth 0 is best.
  logits.at2(1, 0) = 9;
  const std::vector<int> labels = {2, 0};
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 1), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 3), 1.0);
  EXPECT_THROW(top_k_accuracy(logits, labels, 0), std::invalid_argument);
  EXPECT_THROW(top_k_accuracy(logits, labels, 5), std::invalid_argument);
}

TEST(TopK, MonotoneInK) {
  Rng rng(3);
  Tensor logits({20, 10});
  for (float& v : logits.data()) v = static_cast<float>(rng.normal());
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) labels.push_back(i % 10);
  double prev = 0.0;
  for (int k = 1; k <= 10; ++k) {
    const double acc = top_k_accuracy(logits, labels, k);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // top-10 over 10 classes is always 1
}

TEST(EvaluateConfusion, MatchesEvaluate) {
  SynthCifar task(8, 10, 3);
  const Dataset val = task.generate(4, 2);
  Rng rng(5);
  PathNetwork net(tiny_skeleton(8, 4), 7);
  const Genotype g = random_genotype(rng);
  const ConfusionMatrix cm = evaluate_confusion(net, g, val, 16);
  EXPECT_EQ(cm.total(), static_cast<long long>(val.size()));
  EXPECT_NEAR(cm.accuracy(), net.evaluate(g, val, 16), 1e-12);
}

}  // namespace
}  // namespace yoso
