#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "arch/network.h"
#include "arch/ops.h"
#include "arch/zoo.h"
#include "util/rng.h"

namespace yoso {
namespace {

Genotype simple_genotype() {
  Genotype g;
  for (int n = 0; n < kInteriorNodes; ++n) {
    g.normal.nodes.push_back({0, 1, Op::kConv3x3, Op::kMaxPool3x3});
    g.reduction.nodes.push_back({0, 1, Op::kDwConv5x5, Op::kAvgPool3x3});
  }
  return g;
}

TEST(LayerModel, ConvMacsAndParams) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.in_h = 8;
  l.in_w = 8;
  l.in_c = 4;
  l.out_c = 6;
  l.kernel = 3;
  l.stride = 1;
  EXPECT_EQ(l.out_h(), 8);
  EXPECT_EQ(l.macs(), 8LL * 8 * 9 * 4 * 6);
  EXPECT_EQ(l.params(), 9LL * 4 * 6);
}

TEST(LayerModel, StrideHalvesOutput) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.in_h = 9;
  l.in_w = 9;
  l.in_c = 1;
  l.out_c = 1;
  l.kernel = 3;
  l.stride = 2;
  EXPECT_EQ(l.out_h(), 5);  // ceil(9/2)
  EXPECT_EQ(l.out_w(), 5);
}

TEST(LayerModel, DepthwiseMacs) {
  Layer l;
  l.kind = LayerKind::kDwConv;
  l.in_h = 4;
  l.in_w = 4;
  l.in_c = 8;
  l.out_c = 8;
  l.kernel = 3;
  l.stride = 1;
  EXPECT_EQ(l.macs(), 4LL * 4 * 9 * 8);
  EXPECT_EQ(l.params(), 9LL * 8);
}

TEST(LayerModel, PoolHasNoMacsOrParams) {
  Layer l;
  l.kind = LayerKind::kPool;
  l.in_h = 4;
  l.in_w = 4;
  l.in_c = 8;
  l.out_c = 8;
  l.kernel = 3;
  l.stride = 1;
  EXPECT_EQ(l.macs(), 0);
  EXPECT_EQ(l.params(), 0);
  EXPECT_GT(l.input_accesses(), 0);
}

TEST(LayerModel, FullyConnected) {
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.in_h = 1;
  l.in_w = 1;
  l.in_c = 64;
  l.out_c = 10;
  EXPECT_EQ(l.macs(), 640);
  EXPECT_EQ(l.params(), 650);  // weights + bias
  EXPECT_EQ(l.output_elements(), 10);
}

TEST(ExtractLayers, StemFirstClassifierLast) {
  const auto layers = extract_layers(simple_genotype(), default_skeleton());
  ASSERT_GT(layers.size(), 3u);
  EXPECT_EQ(layers.front().name, "stem");
  EXPECT_EQ(layers.front().in_c, 3);
  EXPECT_EQ(layers.back().kind, LayerKind::kFullyConnected);
  EXPECT_EQ(layers.back().out_c, 10);
  EXPECT_EQ(layers[layers.size() - 2].name, "global_avg_pool");
}

TEST(ExtractLayers, LayerCountMatchesStructure) {
  const auto skeleton = default_skeleton();
  const auto layers = extract_layers(simple_genotype(), skeleton);
  // stem + per cell (2 preprocess + 10 node ops) + gap + fc
  const std::size_t expected = 1 + skeleton.cells.size() * 12 + 2;
  EXPECT_EQ(layers.size(), expected);
}

TEST(ExtractLayers, ReductionHalvesSpatialAndDoublesFilters) {
  const auto skeleton = default_skeleton();  // N N R N N R at 32x32, stem 24
  const auto layers = extract_layers(simple_genotype(), skeleton);
  // Find the first op of cell 2 (the first reduction) reading a cell input:
  // it must have stride 2 and 48 channels.
  bool found = false;
  for (const auto& l : layers) {
    if (l.name.rfind("cell2.node2", 0) == 0) {
      EXPECT_EQ(l.stride, 2);
      EXPECT_EQ(l.in_c, 48);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
  // Ops inside the last normal cells run at 16x16.
  for (const auto& l : layers) {
    if (l.name.rfind("cell3.node", 0) == 0 && l.stride == 1) {
      EXPECT_EQ(l.in_h, 16);
    }
  }
}

TEST(ExtractLayers, PreprocessAlignsAfterReduction) {
  const auto layers = extract_layers(simple_genotype(), default_skeleton());
  // Cell 3 follows the reduction cell 2: its pre0 input comes from cell 1
  // (32x32) and must be strided to 16x16.
  for (const auto& l : layers) {
    if (l.name == "cell3.pre0") {
      EXPECT_EQ(l.in_h, 32);
      EXPECT_EQ(l.stride, 2);
    }
    if (l.name == "cell3.pre1") {
      EXPECT_EQ(l.in_h, 16);
      EXPECT_EQ(l.stride, 1);
    }
  }
}

TEST(ExtractLayers, InvalidGenotypeThrows) {
  Genotype g = simple_genotype();
  g.normal.nodes[0].input_a = 5;
  EXPECT_THROW(extract_layers(g, default_skeleton()), std::invalid_argument);
}

TEST(ExtractLayers, EmptySkeletonThrows) {
  NetworkSkeleton s = default_skeleton();
  s.cells.clear();
  EXPECT_THROW(extract_layers(simple_genotype(), s), std::invalid_argument);
}

TEST(ExtractLayers, TinySkeletonShapes) {
  const auto skeleton = tiny_skeleton(12, 8);
  const auto layers = extract_layers(simple_genotype(), skeleton);
  EXPECT_EQ(layers.front().in_h, 12);
  EXPECT_EQ(layers.front().out_c, 8);
}

TEST(NetworkStats, AggregatesAreConsistent) {
  const auto layers = extract_layers(simple_genotype(), default_skeleton());
  const auto stats = network_stats(layers);
  EXPECT_EQ(stats.num_layers, layers.size());
  EXPECT_GT(stats.total_macs, 0);
  EXPECT_GT(stats.total_params, 0);
  EXPECT_GT(stats.num_weight_layers, 0u);
  EXPECT_LT(stats.num_weight_layers, stats.num_layers);
  std::int64_t macs = 0;
  for (const auto& l : layers) macs += l.macs();
  EXPECT_EQ(stats.total_macs, macs);
}

TEST(NetworkStats, ConvHeavyCostsMoreThanPoolHeavy) {
  Genotype convs, pools;
  for (int n = 0; n < kInteriorNodes; ++n) {
    convs.normal.nodes.push_back({0, 1, Op::kConv5x5, Op::kConv3x3});
    convs.reduction.nodes.push_back({0, 1, Op::kConv5x5, Op::kConv3x3});
    pools.normal.nodes.push_back({0, 1, Op::kMaxPool3x3, Op::kAvgPool3x3});
    pools.reduction.nodes.push_back({0, 1, Op::kMaxPool3x3, Op::kAvgPool3x3});
  }
  const auto skeleton = default_skeleton();
  const auto sc = network_stats(extract_layers(convs, skeleton));
  const auto sp = network_stats(extract_layers(pools, skeleton));
  EXPECT_GT(sc.total_macs, 5 * sp.total_macs);
  EXPECT_GT(sc.total_params, sp.total_params);
}

class SkeletonSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkeletonSweep, RandomGenotypesExtractCleanly) {
  const int hw = GetParam();
  Rng rng(hw);
  const auto skeleton = tiny_skeleton(hw, 8);
  for (int i = 0; i < 20; ++i) {
    const auto layers = extract_layers(random_genotype(rng), skeleton);
    for (const auto& l : layers) {
      EXPECT_GT(l.in_h, 0) << l.name;
      EXPECT_GT(l.in_c, 0) << l.name;
      EXPECT_GE(l.macs(), 0) << l.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkeletonSweep, ::testing::Values(8, 12, 16, 32));

}  // namespace
}  // namespace yoso
