#include <gtest/gtest.h>
#include <memory>
#include <set>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/extended_space.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(ExtendedSpace, FortySixActions) {
  ExtendedDesignSpace space;
  EXPECT_EQ(space.num_actions(), 46);
  const auto cards = space.cardinalities();
  ASSERT_EQ(cards.size(), 46u);
  EXPECT_EQ(cards[44], 3);  // depth options {1,2,3}
  EXPECT_EQ(cards[45], 3);  // stem options {16,24,32}
}

TEST(ExtendedSpace, SkeletonForBuildsPaperPattern) {
  ExtendedDesignSpace space;
  const NetworkSkeleton s = space.skeleton_for(1, 2);  // depth 2, stem 32
  // N N R N N R
  ASSERT_EQ(s.cells.size(), 6u);
  EXPECT_EQ(s.cells[0], CellKind::kNormal);
  EXPECT_EQ(s.cells[2], CellKind::kReduction);
  EXPECT_EQ(s.cells[5], CellKind::kReduction);
  EXPECT_EQ(s.stem_channels, 32);
  // Depth 1: N R N R.
  EXPECT_EQ(space.skeleton_for(0, 0).cells.size(), 4u);
  EXPECT_THROW(space.skeleton_for(3, 0), std::invalid_argument);
}

TEST(ExtendedSpace, EncodeDecodeRoundTrip) {
  ExtendedDesignSpace space;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const ExtendedCandidate c = space.random_candidate(rng);
    const auto actions = space.encode(c);
    ASSERT_EQ(actions.size(), 46u);
    EXPECT_TRUE(space.decode(actions) == c);
  }
}

TEST(ExtendedSpace, DecodeRejectsWrongLength) {
  ExtendedDesignSpace space;
  EXPECT_THROW(space.decode(std::vector<int>(44, 0)), std::invalid_argument);
}

TEST(ExtendedSpace, RandomCandidatesCoverSkeletons) {
  ExtendedDesignSpace space;
  Rng rng(5);
  std::set<std::size_t> cell_counts;
  std::set<int> stems;
  for (int i = 0; i < 100; ++i) {
    const ExtendedCandidate c = space.random_candidate(rng);
    cell_counts.insert(c.skeleton.cells.size());
    stems.insert(c.skeleton.stem_channels);
  }
  EXPECT_EQ(cell_counts.size(), 3u);  // 4, 6, 8 cells
  EXPECT_EQ(stems.size(), 3u);
}

class ExtendedSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<ExtendedDesignSpace>();
    SystolicSimulator sim({}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<ExtendedFastEvaluator>(*space_, sim, 180, 7);
    accurate_ = std::make_unique<ExtendedAccurateEvaluator>(
        SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    fast_.reset();
    space_.reset();
  }
  static std::unique_ptr<ExtendedDesignSpace> space_;
  static std::unique_ptr<ExtendedFastEvaluator> fast_;
  static std::unique_ptr<ExtendedAccurateEvaluator> accurate_;
};

std::unique_ptr<ExtendedDesignSpace> ExtendedSearchTest::space_;
std::unique_ptr<ExtendedFastEvaluator> ExtendedSearchTest::fast_;
std::unique_ptr<ExtendedAccurateEvaluator> ExtendedSearchTest::accurate_;

TEST_F(ExtendedSearchTest, EvaluatorsRespondToSkeleton) {
  Rng rng(9);
  ExtendedCandidate c = space_->random_candidate(rng);
  c.skeleton = space_->skeleton_for(0, 0);  // smallest
  const EvalResult small = accurate_->evaluate(c);
  c.skeleton = space_->skeleton_for(2, 2);  // largest
  const EvalResult large = accurate_->evaluate(c);
  EXPECT_GT(large.energy_mj, small.energy_mj);
  EXPECT_GT(large.latency_ms, small.latency_ms);
  // Bigger skeleton -> better (or equal) accuracy in the surrogate.
  EXPECT_GE(large.accuracy, small.accuracy - 0.02);
}

TEST_F(ExtendedSearchTest, FastPredictorTracksSkeletonScale) {
  Rng rng(11);
  ExtendedCandidate c = space_->random_candidate(rng);
  c.skeleton = space_->skeleton_for(0, 0);
  const EvalResult small = fast_->evaluate(c);
  c.skeleton = space_->skeleton_for(2, 2);
  const EvalResult large = fast_->evaluate(c);
  EXPECT_GT(large.energy_mj, small.energy_mj);
}

TEST_F(ExtendedSearchTest, SearchRunsAndReranks) {
  SearchOptions opt;
  opt.iterations = 150;
  opt.top_n = 5;
  opt.reward = energy_opt_reward();
  opt.seed = 13;
  ExtendedSearch search(*space_, opt);
  const ExtendedSearchResult r = search.run(*fast_, accurate_.get());
  EXPECT_FALSE(r.finalists.empty());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.best_fast_reward, 0.0);
  for (std::size_t i = 1; i < r.finalists.size(); ++i)
    EXPECT_GE(r.finalists[i - 1].accurate_reward,
              r.finalists[i].accurate_reward);
}

}  // namespace
}  // namespace yoso
