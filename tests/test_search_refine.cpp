// Online refinement: the Evaluator::refine() hook on the sparse-predictor
// FastEvaluator (GP updates + memo-cache flush), the SearchOptions
// contracts for the new predictor knobs, and the end-to-end search-driver
// loop folding accurate results into the fast evaluator on a fixed cadence
// with bit-identical output across thread counts.

#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace yoso {
namespace {

class SearchRefineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    const SystolicSimulator sim({}, SimFidelity::kAnalytical);
    Rng rng(9);
    samples_ = std::make_unique<std::vector<PerfSample>>(
        collect_samples(150, sim, space_->config_space(), *skeleton_, rng));
    accurate_ = std::make_unique<AccurateEvaluator>(
        *skeleton_, SystolicSimulator({}, SimFidelity::kAnalytical));
  }
  static void TearDownTestSuite() {
    accurate_.reset();
    samples_.reset();
    skeleton_.reset();
    space_.reset();
  }

  // Refinement mutates the evaluator, so every test builds a fresh one
  // from the shared sample set.
  static FastEvaluator sparse_fast() {
    return FastEvaluator(*skeleton_, *samples_, GpBackend::kSparse, 64);
  }

  static SearchOptions refine_options() {
    SearchOptions opt;
    opt.iterations = 60;
    opt.batch_size = 8;
    opt.top_n = 5;
    opt.trace_every = 10;
    opt.reward = balanced_reward();
    opt.seed = 13;
    opt.predictor = GpBackend::kSparse;
    opt.inducing_points = 64;
    opt.refine_every = 20;
    return opt;
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<std::vector<PerfSample>> samples_;
  static std::unique_ptr<AccurateEvaluator> accurate_;
};

std::unique_ptr<DesignSpace> SearchRefineTest::space_;
std::unique_ptr<NetworkSkeleton> SearchRefineTest::skeleton_;
std::unique_ptr<std::vector<PerfSample>> SearchRefineTest::samples_;
std::unique_ptr<AccurateEvaluator> SearchRefineTest::accurate_;

TEST_F(SearchRefineTest, OptionsValidateRefinementContracts) {
  SearchOptions opt = refine_options();
  EXPECT_NO_THROW(opt.validate());
  opt.predictor = GpBackend::kExact;  // refine_every without sparse backend
  EXPECT_THROW(opt.validate(), ContractViolation);
  opt.refine_every = 0;
  EXPECT_NO_THROW(opt.validate());
  opt.inducing_points = 0;
  EXPECT_THROW(opt.validate(), ContractViolation);
}

TEST_F(SearchRefineTest, RefineUpdatesPredictorAndFlushesCache) {
  FastEvaluator fast = sparse_fast();
  EXPECT_TRUE(fast.predictor().supports_refinement());
  Rng rng(21);
  std::vector<CandidateDesign> batch;
  for (int i = 0; i < 6; ++i)
    batch.push_back(space_->random_candidate(rng));
  const EvalResult before = fast.evaluate(batch[0]);
  fast.evaluate_batch(batch);
  EXPECT_GT(fast.cache_size(), 0u);

  const EvalResult truth = accurate_->evaluate(batch[0]);
  EXPECT_TRUE(fast.refine(batch[0], truth));
  EXPECT_EQ(fast.predictor().refinements(), 1u);
  EXPECT_EQ(fast.cache_size(), 0u) << "stale memo entries must be flushed";

  // The refined GP pair answers differently — and evaluate_batch agrees
  // with evaluate() again after the flush.
  const EvalResult after = fast.evaluate(batch[0]);
  EXPECT_NE(after.latency_ms, before.latency_ms);
  const std::vector<EvalResult> rebatch = fast.evaluate_batch(batch);
  EXPECT_DOUBLE_EQ(rebatch[0].latency_ms, after.latency_ms);
  EXPECT_DOUBLE_EQ(rebatch[0].energy_mj, after.energy_mj);
}

TEST_F(SearchRefineTest, ExactBackendRefineIsANoOp) {
  FastEvaluator fast(*skeleton_, *samples_);  // exact backend
  EXPECT_FALSE(fast.predictor().supports_refinement());
  Rng rng(23);
  const CandidateDesign c = space_->random_candidate(rng);
  const EvalResult before = fast.evaluate(c);
  fast.evaluate_batch(std::span<const CandidateDesign>(&c, 1));
  const std::size_t cached = fast.cache_size();
  EXPECT_FALSE(fast.refine(c, accurate_->evaluate(c)));
  EXPECT_EQ(fast.predictor().refinements(), 0u);
  EXPECT_EQ(fast.cache_size(), cached) << "no-op refine must keep the cache";
  const EvalResult after = fast.evaluate(c);
  EXPECT_DOUBLE_EQ(after.latency_ms, before.latency_ms);
}

TEST_F(SearchRefineTest, DriverRefinesOnCadenceEndToEnd) {
  FastEvaluator fast = sparse_fast();
  YosoSearch search(*space_, refine_options());
  const SearchResult r = search.run(fast, accurate_.get());
  // 60 iterations at refine_every = 20 crosses three boundaries.
  EXPECT_EQ(r.refinements, 3u);
  EXPECT_EQ(fast.predictor().refinements(), 3u);
  EXPECT_EQ(r.iterations_run, 60u);
  EXPECT_FALSE(r.finalists.empty());
  ASSERT_TRUE(r.best.has_value());
}

TEST_F(SearchRefineTest, RefinedSearchBitIdenticalAcrossThreadCounts) {
  FastEvaluator serial_fast = sparse_fast();
  const SearchResult serial =
      YosoSearch(*space_, refine_options()).run(serial_fast, accurate_.get());
  for (const std::size_t threads : {2u, 8u}) {
    FastEvaluator fast = sparse_fast();
    const SearchResult r = YosoSearch(*space_, refine_options())
                               .run(fast, accurate_.get(),
                                    ExecContext::create(threads));
    EXPECT_EQ(r.refinements, serial.refinements) << threads;
    ASSERT_EQ(r.finalists.size(), serial.finalists.size()) << threads;
    EXPECT_EQ(r.best_fast_reward, serial.best_fast_reward) << threads;
    for (std::size_t i = 0; i < r.finalists.size(); ++i) {
      EXPECT_EQ(candidate_key(r.finalists[i].candidate),
                candidate_key(serial.finalists[i].candidate))
          << "threads=" << threads << " finalist " << i;
      EXPECT_EQ(r.finalists[i].fast_reward, serial.finalists[i].fast_reward)
          << "threads=" << threads << " finalist " << i;
    }
  }
}

TEST_F(SearchRefineTest, RefinementOffLeavesResultUntouched) {
  SearchOptions opt = refine_options();
  opt.refine_every = 0;
  FastEvaluator fast = sparse_fast();
  const SearchResult r = YosoSearch(*space_, opt).run(fast, accurate_.get());
  EXPECT_EQ(r.refinements, 0u);
  EXPECT_EQ(fast.predictor().refinements(), 0u);
}

}  // namespace
}  // namespace yoso
