#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace yoso {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(31);
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(w));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, WeightedIndexErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(1);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  // Child stream should not reproduce the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(43);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, StreamsStayInBoundsAndDeterministic) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 500; ++i) {
    const double u = a.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, b.uniform());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xFFFFFFFFull,
                                           0xDEADBEEFCAFEull,
                                           ~std::uint64_t{0}));

}  // namespace
}  // namespace yoso
