#include <gtest/gtest.h>
#include <set>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "util/rng.h"

namespace yoso {
namespace {

CellGenotype chain_cell() {
  // Each node reads the two immediately previous nodes.
  CellGenotype c;
  for (int n = 0; n < kInteriorNodes; ++n) {
    NodeSpec s;
    s.input_a = n;      // node index n (previous interior or input)
    s.input_b = n + 1;  // the immediately preceding node
    s.op_a = Op::kConv3x3;
    s.op_b = Op::kDwConv3x3;
    c.nodes.push_back(s);
  }
  return c;
}

TEST(Genotype, ChainCellIsValid) {
  std::string error;
  EXPECT_TRUE(validate_cell(chain_cell(), &error)) << error;
  EXPECT_TRUE(error.empty());
}

TEST(Genotype, WrongNodeCountInvalid) {
  CellGenotype c = chain_cell();
  c.nodes.pop_back();
  std::string error;
  EXPECT_FALSE(validate_cell(c, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Genotype, ForwardReferenceInvalid) {
  CellGenotype c = chain_cell();
  c.nodes[0].input_a = 2;  // node 2 cannot read itself
  EXPECT_FALSE(validate_cell(c));
  c = chain_cell();
  c.nodes[0].input_b = 5;  // nor a later node
  EXPECT_FALSE(validate_cell(c));
}

TEST(Genotype, NegativeInputInvalid) {
  CellGenotype c = chain_cell();
  c.nodes[2].input_a = -1;
  EXPECT_FALSE(validate_cell(c));
}

TEST(Genotype, BadOpInvalid) {
  CellGenotype c = chain_cell();
  c.nodes[1].op_a = static_cast<Op>(17);
  EXPECT_FALSE(validate_cell(c));
}

TEST(Genotype, ValidateGenotypeNamesBadCell) {
  Genotype g;
  g.normal = chain_cell();
  g.reduction = chain_cell();
  g.reduction.nodes[0].input_a = 3;
  std::string error;
  EXPECT_FALSE(validate_genotype(g, &error));
  EXPECT_NE(error.find("reduction"), std::string::npos);
}

TEST(Genotype, LooseEndsChainIsLastNode) {
  // In the chain cell every interior node except the last feeds a successor.
  const auto loose = loose_end_nodes(chain_cell());
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_EQ(loose[0], kNodesPerCell - 1);
}

TEST(Genotype, LooseEndsAllUnused) {
  // Every node reads only the two cell inputs -> all interior nodes loose.
  CellGenotype c;
  for (int n = 0; n < kInteriorNodes; ++n)
    c.nodes.push_back({0, 1, Op::kConv3x3, Op::kConv3x3});
  const auto loose = loose_end_nodes(c);
  EXPECT_EQ(loose.size(), static_cast<std::size_t>(kInteriorNodes));
}

TEST(Genotype, LooseEndsSortedAscending) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto loose = loose_end_nodes(random_cell(rng));
    EXPECT_FALSE(loose.empty());
    for (std::size_t j = 1; j < loose.size(); ++j)
      EXPECT_LT(loose[j - 1], loose[j]);
    for (int node : loose) {
      EXPECT_GE(node, 2);
      EXPECT_LT(node, kNodesPerCell);
    }
  }
}

TEST(Genotype, ToStringMentionsOps) {
  const std::string s = to_string(chain_cell());
  EXPECT_NE(s.find("conv3x3"), std::string::npos);
  EXPECT_NE(s.find("dwconv3x3"), std::string::npos);
}

TEST(Genotype, SpaceSizeMatchesFormula) {
  // prod_{i=2..6} i^2 * 36 = (2*3*4*5*6)^2 * 36^5
  const double expected =
      720.0 * 720.0 * 36.0 * 36.0 * 36.0 * 36.0 * 36.0;
  EXPECT_NEAR(cell_space_size(), expected, expected * 1e-12);
  EXPECT_NEAR(genotype_space_size(), expected * expected,
              expected * expected * 1e-12);
}

TEST(Genotype, SpaceSizeIsAstronomical) {
  // The paper quotes ~5x10^11 for a restricted counting; our full count is
  // larger but must exceed 10^10 regardless.
  EXPECT_GT(genotype_space_size(), 1e10);
}

class RandomGenotypeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGenotypeSweep, AlwaysValid) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Genotype g = random_genotype(rng);
    std::string error;
    EXPECT_TRUE(validate_genotype(g, &error)) << error;
  }
}

TEST_P(RandomGenotypeSweep, SamplesDiverse) {
  Rng rng(GetParam());
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) seen.insert(to_string(random_genotype(rng)));
  EXPECT_GT(seen.size(), 45u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGenotypeSweep,
                         ::testing::Values(1ull, 7ull, 99ull, 12345ull));

}  // namespace
}  // namespace yoso
