#include "accel/config.h"

#include <gtest/gtest.h>

#include <set>

namespace yoso {
namespace {

TEST(Dataflow, NamesRoundTrip) {
  for (int i = 0; i < kNumDataflows; ++i) {
    const auto df = static_cast<Dataflow>(i);
    EXPECT_EQ(dataflow_from_name(dataflow_name(df)), df);
  }
  EXPECT_EQ(dataflow_name(Dataflow::kWeightStationary), "WS");
  EXPECT_EQ(dataflow_name(Dataflow::kNoLocalReuse), "NLR");
  EXPECT_THROW(dataflow_from_name("XYZ"), std::invalid_argument);
}

TEST(AcceleratorConfig, ToStringMatchesPaperStyle) {
  AcceleratorConfig c{16, 32, 512, 512, Dataflow::kOutputStationary};
  EXPECT_EQ(c.to_string(), "16*32/512KB/512B/OS");
  EXPECT_EQ(c.num_pes(), 512);
}

TEST(ConfigSpace, DefaultCoversTable1Ranges) {
  const ConfigSpace space = default_config_space();
  // Table 2 shapes must be present.
  std::set<std::pair<int, int>> shapes(space.pe_shapes.begin(),
                                       space.pe_shapes.end());
  EXPECT_TRUE(shapes.count({16, 32}));
  EXPECT_TRUE(shapes.count({14, 16}));
  EXPECT_TRUE(shapes.count({16, 20}));
  EXPECT_TRUE(shapes.count({8, 8}));
  // Buffer ranges from Table 1.
  EXPECT_EQ(space.g_buf_kb_options.front(), 108);
  EXPECT_EQ(space.g_buf_kb_options.back(), 1024);
  EXPECT_EQ(space.r_buf_byte_options.front(), 64);
  EXPECT_EQ(space.r_buf_byte_options.back(), 1024);
}

TEST(ConfigSpace, FourActions) {
  const ConfigSpace space = default_config_space();
  EXPECT_EQ(ConfigSpace::kActionCount, 4);
  EXPECT_EQ(space.cardinality(3), kNumDataflows);
  EXPECT_THROW(space.cardinality(4), std::invalid_argument);
}

TEST(ConfigSpace, SizeIsProductOfCardinalities) {
  const ConfigSpace space = default_config_space();
  std::size_t expected = 1;
  for (int a = 0; a < ConfigSpace::kActionCount; ++a)
    expected *= static_cast<std::size_t>(space.cardinality(a));
  EXPECT_EQ(space.size(), expected);
  EXPECT_EQ(space.enumerate().size(), expected);
}

TEST(ConfigSpace, EncodeDecodeRoundTrip) {
  const ConfigSpace space = default_config_space();
  for (const AcceleratorConfig& c : space.enumerate()) {
    const auto actions = space.encode(c);
    EXPECT_EQ(space.decode(actions), c);
  }
}

TEST(ConfigSpace, DecodeRejectsBadActions) {
  const ConfigSpace space = default_config_space();
  EXPECT_THROW(space.decode({0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(space.decode({-1, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(space.decode({0, 99, 0, 0}), std::invalid_argument);
}

TEST(ConfigSpace, EncodeRejectsForeignConfig) {
  const ConfigSpace space = default_config_space();
  AcceleratorConfig c{7, 7, 512, 512, Dataflow::kWeightStationary};
  EXPECT_THROW(space.encode(c), std::invalid_argument);
}

TEST(ConfigSpace, EnumerateHasNoDuplicates) {
  const ConfigSpace space = default_config_space();
  std::set<std::string> seen;
  for (const AcceleratorConfig& c : space.enumerate())
    seen.insert(c.to_string());
  EXPECT_EQ(seen.size(), space.size());
}

}  // namespace
}  // namespace yoso
