// Negative compile fixture for the thread-safety analysis (ctest
// `tsa.negative`, clang only — see tests/fixtures/check_tsa_negative.cmake).
//
// FastEvaluator::cache_ is coordinator-only state, expressed as
// YOSO_GUARDED_BY(coordinator_).  This TU deliberately violates the rule:
// it defines the fixture hook the header declares under
// YOSO_TSA_NEGATIVE_FIXTURE and touches the cache from a worker lambda.
// Under `clang++ -Wthread-safety -Werror` this file MUST FAIL to compile
// with a "requires holding role 'coordinator_'" diagnostic; the ctest
// asserts both the failure and the diagnostic text.  If this file ever
// compiles, the compile-time proof that workers cannot reach the memo cache
// is gone — that is the regression being guarded.
//
// (The hook exists because cache_ is private: the violation has to live in
// a member function, and we want it excluded from normal builds.)

#ifndef YOSO_TSA_NEGATIVE_FIXTURE
#error "compile with -DYOSO_TSA_NEGATIVE_FIXTURE (see check_tsa_negative.cmake)"
#endif

#include "core/evaluator.h"

namespace yoso {

void FastEvaluator::tsa_fixture_worker_touches_cache() {
  pool().parallel_for(0, 4, [&](std::size_t) {
    cache_.clear();  // BAD: coordinator-guarded state from a worker lambda
  });
}

}  // namespace yoso
