# Runs the thread-safety negative fixture through clang and asserts it is
# REJECTED with the expected -Wthread-safety diagnostic.  Registered as ctest
# `tsa.negative` only when the toolchain is clang (gcc parses the annotation
# macros away, so there the fixture is meaningless).
#
# Inputs: CXX (clang++ path), SRC_DIR (repo root).
execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only
          -I${SRC_DIR}/src
          -DYOSO_TSA_NEGATIVE_FIXTURE
          -Wthread-safety -Wthread-safety-beta -Werror
          ${SRC_DIR}/tests/fixtures/tsa_negative_cache_access.cpp
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(rc EQUAL 0)
  message(FATAL_ERROR
    "tsa.negative: the fixture COMPILED — a worker lambda touching "
    "FastEvaluator::cache_ is no longer rejected by -Wthread-safety; the "
    "coordinator_ guard on cache_ has regressed")
endif()

string(FIND "${err}${out}" "requires holding" diag_pos)
if(diag_pos EQUAL -1)
  message(FATAL_ERROR
    "tsa.negative: the fixture failed to compile, but not with the expected "
    "thread-safety diagnostic ('requires holding ...'); compiler said:\n"
    "${err}")
endif()

message(STATUS
  "tsa.negative: worker access to cache_ correctly rejected by clang")
