#include <gtest/gtest.h>

#include "core/pareto.h"
#include "core/reward.h"

namespace yoso {
namespace {

TEST(ParetoDominance, TwoObjective) {
  EXPECT_TRUE(dominates(ParetoPoint{1.0, 1.0}, ParetoPoint{2.0, 2.0}));
  EXPECT_TRUE(dominates(ParetoPoint{1.0, 2.0}, ParetoPoint{2.0, 2.0}));
  EXPECT_FALSE(dominates(ParetoPoint{1.0, 3.0}, ParetoPoint{2.0, 2.0}));
  EXPECT_FALSE(dominates(ParetoPoint{2.0, 2.0}, ParetoPoint{2.0, 2.0}));
  EXPECT_FALSE(dominates(ParetoPoint{2.0, 2.0}, ParetoPoint{1.0, 1.0}));
}

TEST(ParetoDominance, ThreeObjectiveEval) {
  const EvalResult good{0.97, 0.5, 4.0};
  const EvalResult bad{0.95, 1.0, 8.0};
  const EvalResult mixed{0.99, 2.0, 3.0};
  EXPECT_TRUE(dominates(good, bad));
  EXPECT_FALSE(dominates(bad, good));
  EXPECT_FALSE(dominates(good, mixed));
  EXPECT_FALSE(dominates(mixed, good));
  EXPECT_FALSE(dominates(good, good));
}

TEST(ParetoFront, ExtractsNonDominatedSet) {
  const std::vector<ParetoPoint> points = {
      {1.0, 5.0}, {2.0, 3.0}, {3.0, 4.0},  // (3,4) dominated by (2,3)
      {4.0, 1.0}, {5.0, 5.0},              // (5,5) dominated by several
  };
  const auto front = pareto_front_indices(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ParetoFront, DuplicatesKeepFirst) {
  const std::vector<ParetoPoint> points = {{1.0, 1.0}, {1.0, 1.0}};
  const auto front = pareto_front_indices(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, SinglePoint) {
  const std::vector<ParetoPoint> points = {{3.0, 3.0}};
  EXPECT_EQ(pareto_front_indices(points).size(), 1u);
}

TEST(ParetoFront, EvalResults) {
  const std::vector<EvalResult> results = {
      {0.97, 0.5, 4.0},   // front
      {0.95, 1.0, 8.0},   // dominated by the first
      {0.99, 2.0, 3.0},   // front (best accuracy / energy trade)
  };
  const auto front = pareto_front_indices(std::span(results));
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2}));
}

TEST(Hypervolume, RectangleForSinglePoint) {
  const std::vector<ParetoPoint> points = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(points, {3.0, 3.0}), 4.0);
}

TEST(Hypervolume, UnionOfTwoPoints) {
  const std::vector<ParetoPoint> points = {{1.0, 2.0}, {2.0, 1.0}};
  // Each rectangle is 2x1 / 1x2 to ref (3,3): union = 2+2+... compute:
  // area = (2-1)*(3-2) + (3-2)*(3-1) = 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(hypervolume_2d(points, {3.0, 3.0}), 3.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const std::vector<ParetoPoint> a = {{1.0, 1.0}};
  const std::vector<ParetoPoint> b = {{1.0, 1.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(a, {4.0, 4.0}),
                   hypervolume_2d(b, {4.0, 4.0}));
}

TEST(Hypervolume, PointsBeyondReferenceClipped) {
  const std::vector<ParetoPoint> points = {{5.0, 5.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(points, {3.0, 3.0}), 0.0);
}

TEST(Hypervolume, MoreDiversityMoreVolume) {
  const std::vector<ParetoPoint> narrow = {{2.0, 2.0}};
  const std::vector<ParetoPoint> wide = {{2.0, 2.0}, {1.0, 2.5}, {2.5, 1.0}};
  EXPECT_GT(hypervolume_2d(wide, {4.0, 4.0}),
            hypervolume_2d(narrow, {4.0, 4.0}));
}

TEST(DistanceToFront, ZeroOnFrontPositiveOff) {
  const std::vector<ParetoPoint> front = {{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_DOUBLE_EQ(distance_to_front({1.0, 2.0}, front), 0.0);
  EXPECT_NEAR(distance_to_front({2.0, 2.0}, front), 1.0, 1e-12);
  const std::vector<ParetoPoint> empty;
  EXPECT_THROW(distance_to_front({0.0, 0.0}, empty), std::invalid_argument);
}

TEST(TradeoffPoints, ProjectionAxes) {
  const std::vector<EvalResult> results = {{0.97, 0.5, 4.0}};
  const auto pe = to_tradeoff_points(results, TradeoffMetric::kEnergy);
  EXPECT_NEAR(pe[0].first, 3.0, 1e-9);   // error %
  EXPECT_DOUBLE_EQ(pe[0].second, 4.0);   // energy
  const auto pl = to_tradeoff_points(results, TradeoffMetric::kLatency);
  EXPECT_DOUBLE_EQ(pl[0].second, 0.5);
}

}  // namespace
}  // namespace yoso
