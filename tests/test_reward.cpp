#include "core/reward.h"

#include <gtest/gtest.h>

#include <cmath>

namespace yoso {
namespace {

EvalResult result(double acc, double lat, double eer) {
  return EvalResult{acc, lat, eer};
}

TEST(Reward, FormulaExactValue) {
  RewardParams p;
  p.alpha_lat = 0.5;
  p.omega_lat = -0.4;
  p.alpha_eer = 0.5;
  p.omega_eer = -0.4;
  p.t_lat_ms = 1.2;
  p.t_eer_mj = 9.0;
  const EvalResult r = result(0.97, 0.6, 4.5);
  const double expected = 0.97 + 0.5 * std::pow(0.6 / 1.2, -0.4) +
                          0.5 * std::pow(4.5 / 9.0, -0.4);
  EXPECT_NEAR(p.compute(r), expected, 1e-12);
}

TEST(Reward, AtThresholdTermsEqualAlpha) {
  RewardParams p = balanced_reward();
  const EvalResult r = result(0.9, p.t_lat_ms, p.t_eer_mj);
  EXPECT_NEAR(p.compute(r), 0.9 + p.alpha_lat + p.alpha_eer, 1e-12);
}

TEST(Reward, FasterAndLeanerScoresHigher) {
  RewardParams p = balanced_reward();
  EXPECT_GT(p.compute(result(0.95, 0.6, 4.0)),
            p.compute(result(0.95, 1.2, 9.0)));
  EXPECT_GT(p.compute(result(0.95, 1.2, 9.0)),
            p.compute(result(0.95, 2.4, 18.0)));
}

TEST(Reward, AccuracyMonotone) {
  RewardParams p = balanced_reward();
  EXPECT_GT(p.compute(result(0.97, 1.0, 8.0)),
            p.compute(result(0.90, 1.0, 8.0)));
}

TEST(Reward, NonPositivePerformanceThrows) {
  RewardParams p = balanced_reward();
  EXPECT_THROW(p.compute(result(0.9, 0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW(p.compute(result(0.9, 1.0, -2.0)), std::invalid_argument);
}

TEST(Reward, FeasibilityUsesPaperThresholds) {
  RewardParams p = balanced_reward();
  EXPECT_DOUBLE_EQ(p.t_lat_ms, 1.2);  // §IV.A
  EXPECT_DOUBLE_EQ(p.t_eer_mj, 9.0);
  EXPECT_TRUE(p.feasible(result(0.9, 1.2, 9.0)));
  EXPECT_FALSE(p.feasible(result(0.99, 1.3, 5.0)));
  EXPECT_FALSE(p.feasible(result(0.99, 0.5, 9.1)));
}

TEST(Reward, PresetsMatchFig6Coefficients) {
  const RewardParams a = balanced_reward();
  EXPECT_DOUBLE_EQ(a.alpha_lat, 0.5);
  EXPECT_DOUBLE_EQ(a.omega_lat, -0.4);
  EXPECT_DOUBLE_EQ(a.alpha_eer, 0.5);
  EXPECT_DOUBLE_EQ(a.omega_eer, -0.4);

  const RewardParams e = energy_opt_reward();
  EXPECT_DOUBLE_EQ(e.alpha_eer, 0.6);
  EXPECT_DOUBLE_EQ(e.omega_eer, -0.4);
  EXPECT_DOUBLE_EQ(e.alpha_lat, 0.3);
  EXPECT_DOUBLE_EQ(e.omega_lat, -0.2);

  const RewardParams l = latency_opt_reward();
  EXPECT_DOUBLE_EQ(l.alpha_lat, 0.6);
  EXPECT_DOUBLE_EQ(l.omega_lat, -0.4);
  EXPECT_DOUBLE_EQ(l.alpha_eer, 0.3);
  EXPECT_DOUBLE_EQ(l.omega_eer, -0.3);
}

TEST(Reward, EnergyPresetPrioritisesEnergyImprovement) {
  const RewardParams e = energy_opt_reward();
  // Halving energy should raise the reward more than halving latency.
  const double base = e.compute(result(0.95, 1.0, 8.0));
  const double better_e = e.compute(result(0.95, 1.0, 4.0));
  const double better_l = e.compute(result(0.95, 0.5, 8.0));
  EXPECT_GT(better_e - base, better_l - base);
}

TEST(Reward, LatencyPresetPrioritisesLatencyImprovement) {
  const RewardParams l = latency_opt_reward();
  const double base = l.compute(result(0.95, 1.0, 8.0));
  const double better_e = l.compute(result(0.95, 1.0, 4.0));
  const double better_l = l.compute(result(0.95, 0.5, 8.0));
  EXPECT_GT(better_l - base, better_e - base);
}

TEST(Reward, ToStringMentionsCoefficients) {
  const std::string s = balanced_reward().to_string();
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("-0.4"), std::string::npos);
}

}  // namespace
}  // namespace yoso
