// Statistical properties of the joint design space under uniform sampling —
// the distribution the HyperNet trains against (Eq. 6) and the random-search
// baseline draws from.

#include <gtest/gtest.h>
#include <map>

#include "arch/genotype.h"
#include "arch/network.h"
#include "arch/ops.h"
#include "core/design_space.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(SpaceStatistics, OpsUniformUnderRandomSampling) {
  Rng rng(11);
  std::map<Op, int> counts;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const Genotype g = random_genotype(rng);
    for (const CellGenotype* cell : {&g.normal, &g.reduction})
      for (const NodeSpec& s : cell->nodes) {
        ++counts[s.op_a];
        ++counts[s.op_b];
      }
  }
  const double expected = n * 20.0 / kNumOps;
  for (Op op : all_ops())
    EXPECT_NEAR(counts[op], expected, expected * 0.1) << op_name(op);
}

TEST(SpaceStatistics, InputChoicesUniformPerNode) {
  Rng rng(13);
  // Node 6 (last interior) picks inputs uniformly over its 6 predecessors.
  std::map<int, int> counts;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    const Genotype g = random_genotype(rng);
    ++counts[g.normal.nodes.back().input_a];
  }
  for (int input = 0; input < 6; ++input)
    EXPECT_NEAR(counts[input], n / 6, n / 6 / 4) << "input " << input;
}

TEST(SpaceStatistics, LooseEndDistributionReasonable) {
  Rng rng(17);
  double total = 0.0;
  int min_loose = 99, max_loose = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto loose =
        static_cast<int>(loose_end_nodes(random_cell(rng)).size());
    total += loose;
    min_loose = std::min(min_loose, loose);
    max_loose = std::max(max_loose, loose);
  }
  // With 5 interior nodes the mean loose-end count sits between 2 and 3.
  EXPECT_GT(total / n, 1.8);
  EXPECT_LT(total / n, 3.2);
  EXPECT_GE(min_loose, 1);
  EXPECT_LE(max_loose, 5);
}

TEST(SpaceStatistics, MacRangeSpansAnOrderOfMagnitude) {
  Rng rng(19);
  const NetworkSkeleton skeleton = default_skeleton();
  std::int64_t lo = INT64_MAX, hi = 0;
  for (int i = 0; i < 300; ++i) {
    const auto stats =
        network_stats(extract_layers(random_genotype(rng), skeleton));
    lo = std::min(lo, stats.total_macs);
    hi = std::max(hi, stats.total_macs);
  }
  EXPECT_GT(static_cast<double>(hi) / static_cast<double>(lo), 5.0);
  EXPECT_GT(lo, 1'000'000);       // even pool-heavy nets move real data
  EXPECT_LT(hi, 1'000'000'000);   // and nothing explodes
}

TEST(SpaceStatistics, SurrogateErrorDistributionShaped) {
  // Error distribution of uniform random genotypes: unimodal-ish with a
  // long right tail (bad architectures exist, excellent ones are rare).
  AccuracyModel model;
  Rng rng(23);
  int below_3 = 0, above_45 = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double err = model.test_error(random_genotype(rng));
    below_3 += err < 3.0 ? 1 : 0;
    above_45 += err > 4.5 ? 1 : 0;
  }
  EXPECT_GT(below_3, n / 50);   // good nets are findable
  EXPECT_LT(below_3, n / 2);    // but not the majority
  EXPECT_GT(above_45, n / 100); // and the tail of bad nets exists
}

TEST(SpaceStatistics, ExtremeActionVectorsDecode) {
  DesignSpace space;
  const auto cards = space.cardinalities();
  std::vector<int> zeros(cards.size(), 0), maxed(cards.size());
  for (std::size_t i = 0; i < cards.size(); ++i) maxed[i] = cards[i] - 1;
  EXPECT_NO_THROW(space.decode(zeros));
  EXPECT_NO_THROW(space.decode(maxed));
  EXPECT_FALSE(space.decode(zeros) == space.decode(maxed));
}

TEST(SpaceStatistics, HardwareActionsUniform) {
  DesignSpace space;
  Rng rng(29);
  std::map<std::string, int> dataflows;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    ++dataflows[dataflow_name(space.random_candidate(rng).config.dataflow)];
  for (const auto& [name, count] : dataflows)
    EXPECT_NEAR(count, n / 4, n / 4 / 4) << name;
  EXPECT_EQ(dataflows.size(), 4u);
}

}  // namespace
}  // namespace yoso
