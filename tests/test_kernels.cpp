// The shared blocked/SIMD kernel layer (linalg/kernels.h): correctness
// against naive references on randomized shapes — including sizes that are
// not multiples of any register-tile width — plus the determinism contract
// (bit-identical output at any thread count, sub-range calls identical to
// full-range calls).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

std::vector<double> random_vec(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

std::vector<float> random_vecf(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

std::vector<double> naive_gemm(const std::vector<double>& a,
                               const std::vector<double>& b, std::size_t m,
                               std::size_t k, std::size_t n) {
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * k + t] * b[t * n + j];
  return c;
}

TEST(KernelsTest, ActiveIsaIsKnown) {
  const std::string isa = kernels::active_isa();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "generic") << isa;
}

TEST(KernelsTest, DotMatchesNaive) {
  Rng rng(7);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 64u, 301u}) {
    const auto a = random_vec(rng, n);
    const auto b = random_vec(rng, n);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) ref += a[i] * b[i];
    EXPECT_NEAR(kernels::dot(a.data(), b.data(), n), ref,
                1e-12 * (1.0 + std::abs(ref)))
        << "n=" << n;
  }
}

TEST(KernelsTest, GemmMatchesNaiveOnRandomShapes) {
  Rng rng(11);
  // Shapes straddle the 2x16 double tile: odd rows, non-multiple columns.
  const std::size_t shapes[][3] = {{1, 1, 1},   {2, 3, 5},   {7, 22, 17},
                                   {8, 4, 16},  {9, 13, 33}, {16, 1, 31},
                                   {5, 40, 64}, {13, 7, 3}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_vec(rng, m * k);
    const auto b = random_vec(rng, k * n);
    std::vector<double> c(m * n, -1.0);
    kernels::gemm(a.data(), b.data(), c.data(), m, k, n);
    const auto ref = naive_gemm(a, b, m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], ref[i], 1e-11 * (1.0 + std::abs(ref[i])))
          << m << "x" << k << "x" << n << " @" << i;
  }
}

TEST(KernelsTest, GemvMatchesGemm) {
  Rng rng(13);
  const std::size_t m = 9, n = 23;
  const auto a = random_vec(rng, m * n);
  const auto x = random_vec(rng, n);
  std::vector<double> y(m, 0.0);
  kernels::gemv(a.data(), x.data(), y.data(), m, n);
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_DOUBLE_EQ(y[i], kernels::dot(a.data() + i * n, x.data(), n));
}

TEST(KernelsTest, SgemmAbMatchesNaive) {
  Rng rng(17);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {2, 5, 32}, {7, 9, 33}, {5, 64, 31}, {9, 3, 100}, {4, 2, 8}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_vecf(rng, m * k);
    const auto b = random_vecf(rng, k * n);
    std::vector<float> c(m * n, -1.0f);
    kernels::sgemm_ab(a.data(), b.data(), c.data(), m, k, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        float ref = 0.0f;
        for (std::size_t t = 0; t < k; ++t)
          ref += a[i * k + t] * b[t * n + j];
        ASSERT_NEAR(c[i * n + j], ref, 1e-4f * (1.0f + std::abs(ref)))
            << m << "x" << k << "x" << n;
      }
  }
}

TEST(KernelsTest, SgemmAbtMatchesNaive) {
  Rng rng(19);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {3, 7, 5}, {9, 33, 22}, {8, 32, 64}, {13, 5, 41}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], n = s[1], k = s[2];
    const auto a = random_vecf(rng, m * k);
    const auto b = random_vecf(rng, n * k);
    std::vector<float> c(m * n, -1.0f);
    kernels::sgemm_abt(a.data(), b.data(), c.data(), m, n, k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        float ref = 0.0f;
        for (std::size_t t = 0; t < k; ++t)
          ref += a[i * k + t] * b[j * k + t];
        ASSERT_NEAR(c[i * n + j], ref, 1e-4f * (1.0f + std::abs(ref)))
            << m << "x" << n << "x" << k;
      }
  }
}

TEST(KernelsTest, SgemmAtbAccAccumulatesOnTopOfC) {
  Rng rng(23);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {5, 3, 9}, {140, 6, 33}, {17, 40, 32}, {260, 9, 7}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_vecf(rng, m * k);
    const auto b = random_vecf(rng, m * n);
    std::vector<float> c = random_vecf(rng, k * n);
    const std::vector<float> c0 = c;
    kernels::sgemm_atb_acc(a.data(), b.data(), c.data(), m, k, n);
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t j = 0; j < n; ++j) {
        float ref = c0[t * n + j];
        for (std::size_t i = 0; i < m; ++i)
          ref += a[i * k + t] * b[i * n + j];
        ASSERT_NEAR(c[t * n + j], ref,
                    1e-3f * (1.0f + std::abs(ref)) +
                        1e-4f * static_cast<float>(m))
            << m << "x" << k << "x" << n;
      }
  }
}

TEST(KernelsTest, PairwiseSqDistsMatchesNaiveAndClampsAtZero) {
  Rng rng(29);
  for (const std::size_t n : {1u, 5u, 16u, 17u, 33u, 100u}) {
    const std::size_t q = 7, d = 22;
    const auto train = random_vec(rng, n * d);
    const auto queries = random_vec(rng, q * d);
    const kernels::PackedRows packed = kernels::pack_rows(train.data(), n, d);
    std::vector<double> out(q * n, -1.0);
    kernels::pairwise_sq_dists(queries.data(), q, packed, out.data());
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double ref = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
          const double diff = queries[i * d + c] - train[j * d + c];
          ref += diff * diff;
        }
        ASSERT_NEAR(out[i * n + j], ref, 1e-10 * (1.0 + ref))
            << "n=" << n << " (" << i << "," << j << ")";
        ASSERT_GE(out[i * n + j], 0.0);
      }
  }
  // Identical rows: the norm expansion can go slightly negative in exact
  // arithmetic order; the fused epilogue must clamp at zero.
  const std::size_t d = 9;
  const auto row = random_vec(rng, d);
  const kernels::PackedRows self = kernels::pack_rows(row.data(), 1, d);
  double out = -1.0;
  kernels::pairwise_sq_dists(row.data(), 1, self, &out);
  EXPECT_GE(out, 0.0);
  EXPECT_NEAR(out, 0.0, 1e-12);
}

TEST(KernelsTest, ExpScaleMatchesStdExp) {
  Rng rng(31);
  for (const std::size_t n : {1u, 3u, 4u, 7u, 64u, 1001u}) {
    std::vector<double> in(n);
    for (double& v : in) v = rng.uniform(0.0, 50.0);
    std::vector<double> out(n, -1.0);
    const double scale = -0.37, mult = 1.7;
    kernels::exp_scale(in.data(), out.data(), n, scale, mult);
    for (std::size_t i = 0; i < n; ++i) {
      const double ref = mult * std::exp(scale * in[i]);
      ASSERT_NEAR(out[i], ref, 1e-14 * std::abs(ref) + 1e-300) << "n=" << n;
    }
  }
  // In-place aliasing is part of the contract.
  std::vector<double> buf = {0.0, 1.0, 2.0, 3.0, 4.0};
  kernels::exp_scale(buf.data(), buf.data(), buf.size(), -1.0, 1.0);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_NEAR(buf[i], std::exp(-static_cast<double>(i)), 1e-15);
}

TEST(KernelsTest, ExpScaleDotFusesExpAndDot) {
  Rng rng(53);
  // Sizes straddle both the 16-wide interleave and the 4-wide/scalar tails.
  for (const std::size_t n : {1u, 3u, 4u, 15u, 16u, 17u, 31u, 64u, 1000u}) {
    std::vector<double> in(n), w(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = rng.uniform(0.0, 40.0);
      w[i] = rng.uniform(-1.0, 1.0);
    }
    const double scale = -0.21, mult = 2.3;
    std::vector<double> ref(n);
    kernels::exp_scale(in.data(), ref.data(), n, scale, mult);
    std::vector<double> out(n, -1.0);
    const double sum =
        kernels::exp_scale_dot(in.data(), out.data(), w.data(), n, scale,
                               mult);
    double expect = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Element values are bit-identical to the unfused kernel.
      ASSERT_EQ(out[i], ref[i]) << "n=" << n << " i=" << i;
      expect += ref[i] * w[i];
    }
    ASSERT_NEAR(sum, expect, 1e-12 * (1.0 + std::abs(expect))) << "n=" << n;
    // Repeated calls reduce in the same order — exactly reproducible.
    std::vector<double> out2(n);
    ASSERT_EQ(sum, kernels::exp_scale_dot(in.data(), out2.data(), w.data(),
                                          n, scale, mult));
    // In-place aliasing (the GP predict path) gives the same results.
    std::vector<double> buf = in;
    ASSERT_EQ(sum, kernels::exp_scale_dot(buf.data(), buf.data(), w.data(),
                                          n, scale, mult));
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], ref[i]);
  }
}

TEST(KernelsTest, ExpScaleExtremeArgumentsStayFinite) {
  const std::vector<double> in = {0.0, 1.0, 800.0, 5000.0};
  std::vector<double> out(in.size());
  kernels::exp_scale(in.data(), out.data(), in.size(), -1.0, 1.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  for (const double v : out) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GT(out[1], out[2]);
  // Positive overflow direction is clamped to the largest-representable
  // range rather than producing inf from the exponent-field construction.
  kernels::exp_scale(in.data(), out.data(), in.size(), 1.0, 1.0);
  for (const double v : out) EXPECT_TRUE(std::isfinite(v));
}

// --- determinism: thread-count invariance (runs under TSan in CI) ----------

class KernelsParallelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelsParallelTest, GemmBitIdenticalToSerial) {
  Rng rng(37);
  const std::size_t m = 45, k = 22, n = 50;
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, k * n);
  std::vector<double> serial(m * n, 0.0);
  kernels::gemm(a.data(), b.data(), serial.data(), m, k, n, nullptr);
  ThreadPool pool(GetParam());
  std::vector<double> pooled(m * n, -1.0);
  kernels::gemm(a.data(), b.data(), pooled.data(), m, k, n, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "workers=" << GetParam() << " @" << i;
}

TEST_P(KernelsParallelTest, PairwiseBitIdenticalToSerial) {
  Rng rng(41);
  const std::size_t q = 37, n = 61, d = 22;
  const auto train = random_vec(rng, n * d);
  const auto queries = random_vec(rng, q * d);
  const kernels::PackedRows packed = kernels::pack_rows(train.data(), n, d);
  std::vector<double> serial(q * n, 0.0);
  kernels::pairwise_sq_dists(queries.data(), q, packed, serial.data(),
                             nullptr);
  ThreadPool pool(GetParam());
  std::vector<double> pooled(q * n, -1.0);
  kernels::pairwise_sq_dists(queries.data(), q, packed, pooled.data(), &pool);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "workers=" << GetParam() << " @" << i;
}

TEST_P(KernelsParallelTest, SgemmAtbAccBitIdenticalToSerial) {
  Rng rng(43);
  const std::size_t m = 300, k = 33, n = 40;
  const auto a = random_vecf(rng, m * k);
  const auto b = random_vecf(rng, m * n);
  std::vector<float> serial(k * n, 0.5f);
  std::vector<float> pooled = serial;
  kernels::sgemm_atb_acc(a.data(), b.data(), serial.data(), m, k, n, nullptr);
  ThreadPool pool(GetParam());
  kernels::sgemm_atb_acc(a.data(), b.data(), pooled.data(), m, k, n, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "workers=" << GetParam() << " @" << i;
}

// Worker counts 0/1/7 give total thread counts 1/2/8 (caller participates).
INSTANTIATE_TEST_SUITE_P(ThreadCounts, KernelsParallelTest,
                         ::testing::Values(0, 1, 7));

// A row computed as part of a larger batch must be bit-identical to the
// same row computed alone — the property that keeps GpRegressor::predict()
// equal to predict_batch() rows.
TEST(KernelsParallelTest, SubRangeRowsMatchFullRange) {
  Rng rng(47);
  const std::size_t q = 9, n = 37, d = 22;
  const auto train = random_vec(rng, n * d);
  const auto queries = random_vec(rng, q * d);
  const kernels::PackedRows packed = kernels::pack_rows(train.data(), n, d);
  std::vector<double> full(q * n, 0.0);
  kernels::pairwise_sq_dists(queries.data(), q, packed, full.data());
  for (std::size_t i = 0; i < q; ++i) {
    std::vector<double> one(n, -1.0);
    kernels::pairwise_sq_dists(queries.data() + i * d, 1, packed, one.data());
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(one[j], full[i * n + j]) << "row " << i << " col " << j;
  }
}

}  // namespace
}  // namespace yoso
