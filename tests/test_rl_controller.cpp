#include <cmath>
#include <gtest/gtest.h>

#include "rl/controller.h"
#include "rl/param_store.h"
#include "util/rng.h"

namespace yoso {
namespace {

std::vector<int> toy_cards() { return {2, 3, 4, 6}; }

TEST(ParamStore, AllocAndViews) {
  ParamStore store;
  Rng rng(1);
  const ParamView a = store.alloc(10, rng, 0.5);
  const ParamView b = store.alloc(5, rng);
  EXPECT_EQ(store.size(), 15u);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 10u);
  for (double v : store.value(a)) {
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 0.5);
  }
}

TEST(ParamStore, AdamStepMovesAgainstGradient) {
  ParamStore store;
  Rng rng(2);
  const ParamView v = store.alloc(3, rng, 0.0);
  store.grad(v)[0] = 1.0;
  store.grad(v)[1] = -1.0;
  store.adam_step(0.1);
  EXPECT_LT(store.value(v)[0], 0.0);
  EXPECT_GT(store.value(v)[1], 0.0);
  EXPECT_DOUBLE_EQ(store.value(v)[2], 0.0);
}

TEST(ParamStore, GradNormAndScale) {
  ParamStore store;
  Rng rng(3);
  const ParamView v = store.alloc(2, rng, 0.0);
  store.grad(v)[0] = 3.0;
  store.grad(v)[1] = 4.0;
  EXPECT_DOUBLE_EQ(store.grad_norm(), 5.0);
  store.scale_grad(0.5);
  EXPECT_DOUBLE_EQ(store.grad_norm(), 2.5);
  store.zero_grad();
  EXPECT_DOUBLE_EQ(store.grad_norm(), 0.0);
}

TEST(Controller, RejectsBadActionSpaces) {
  EXPECT_THROW(LstmController({}, {}), std::invalid_argument);
  EXPECT_THROW(LstmController({2, 0}, {}), std::invalid_argument);
}

TEST(Controller, SampleRespectsCardinalities) {
  LstmController ctrl(toy_cards(), {});
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Episode ep = ctrl.sample(rng);
    ASSERT_EQ(ep.actions.size(), 4u);
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_GE(ep.actions[t], 0);
      EXPECT_LT(ep.actions[t], toy_cards()[t]);
    }
  }
}

TEST(Controller, LogProbNegativeEntropyPositive) {
  LstmController ctrl(toy_cards(), {});
  Rng rng(5);
  const Episode ep = ctrl.sample(rng);
  EXPECT_LT(ep.log_prob, 0.0);
  EXPECT_GT(ep.entropy, 0.0);
  // Entropy can't exceed sum of log cardinalities.
  double max_ent = 0.0;
  for (int c : toy_cards()) max_ent += std::log(c);
  EXPECT_LE(ep.entropy, max_ent + 1e-9);
}

TEST(Controller, ProbabilitiesNormalised) {
  LstmController ctrl(toy_cards(), {});
  Rng rng(6);
  const Episode ep = ctrl.sample(rng);
  for (const auto& p : ep.probs) {
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Controller, TanhConstantBoundsLogits) {
  // With squashing z in [-C, C], any softmax probability is bounded away
  // from 0 by e^{-2C} / card.
  ControllerOptions opt;
  opt.tanh_constant = 2.5;
  LstmController ctrl(toy_cards(), opt);
  Rng rng(7);
  const Episode ep = ctrl.sample(rng);
  const double floor = std::exp(-2.0 * 2.5) / 6.0;
  for (const auto& p : ep.probs)
    for (double v : p) EXPECT_GE(v, floor * 0.99);
}

TEST(Controller, ArgmaxDeterministic) {
  LstmController ctrl(toy_cards(), {});
  const auto a1 = ctrl.argmax_actions();
  const auto a2 = ctrl.argmax_actions();
  EXPECT_EQ(a1, a2);
  ASSERT_EQ(a1.size(), 4u);
}

TEST(Controller, SameSeedSameBehaviour) {
  ControllerOptions opt;
  opt.seed = 77;
  LstmController a(toy_cards(), opt);
  LstmController b(toy_cards(), opt);
  Rng ra(8), rb(8);
  const Episode ea = a.sample(ra);
  const Episode eb = b.sample(rb);
  EXPECT_EQ(ea.actions, eb.actions);
  EXPECT_DOUBLE_EQ(ea.log_prob, eb.log_prob);
}

TEST(Controller, GradientAccumulationThenUpdateChangesPolicy) {
  LstmController ctrl(toy_cards(), {});
  Rng rng(9);
  const auto before = ctrl.argmax_actions();
  // Strongly reinforce a specific episode many times.
  for (int i = 0; i < 50; ++i) {
    const Episode ep = ctrl.sample(rng);
    const double reward = ep.actions[0] == 1 ? 1.0 : -1.0;
    ctrl.accumulate_gradient(ep, reward, 0.0);
    ctrl.update(0.05);
  }
  // Policy should now prefer action 1 at step 0.
  int hits = 0;
  for (int i = 0; i < 100; ++i)
    hits += ctrl.sample(rng).actions[0] == 1 ? 1 : 0;
  EXPECT_GT(hits, 70);
  (void)before;
}

TEST(Controller, UpdateZeroesGradients) {
  LstmController ctrl(toy_cards(), {});
  Rng rng(10);
  const Episode ep = ctrl.sample(rng);
  ctrl.accumulate_gradient(ep, 1.0, 1e-4);
  ctrl.update(0.01);
  // A second update with no accumulation must be a no-op on the params.
  const auto a1 = ctrl.argmax_actions();
  ctrl.update(0.01);
  EXPECT_EQ(ctrl.argmax_actions(), a1);
}

TEST(Controller, ParamCountScalesWithSpace) {
  LstmController small({2, 2}, {});
  LstmController large(std::vector<int>(44, 6), {});
  EXPECT_GT(large.param_count(), small.param_count());
  EXPECT_GT(small.param_count(), 0u);
}

class HiddenSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(HiddenSizeSweep, SamplesValidAtAnyWidth) {
  ControllerOptions opt;
  opt.hidden_size = GetParam();
  LstmController ctrl(toy_cards(), opt);
  Rng rng(11);
  const Episode ep = ctrl.sample(rng);
  EXPECT_EQ(ep.actions.size(), 4u);
  EXPECT_TRUE(std::isfinite(ep.log_prob));
}

INSTANTIATE_TEST_SUITE_P(Widths, HiddenSizeSweep,
                         ::testing::Values(8, 32, 120));

}  // namespace
}  // namespace yoso
