#include <gtest/gtest.h>

#include "accel/config.h"
#include "core/design_space.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(DesignSpace, FortyFourActions) {
  DesignSpace space;
  EXPECT_EQ(space.num_actions(), 44);  // S=40 DNN + L=4 hardware
  EXPECT_EQ(space.cardinalities().size(), 44u);
  EXPECT_EQ(space.action_names().size(), 44u);
}

TEST(DesignSpace, HardwareActionsAppendedLast) {
  DesignSpace space;
  const auto cards = space.cardinalities();
  const auto names = space.action_names();
  EXPECT_EQ(names[40], "hw.pe_shape");
  EXPECT_EQ(names[43], "hw.dataflow");
  EXPECT_EQ(cards[43], kNumDataflows);
  EXPECT_EQ(cards[40],
            static_cast<int>(space.config_space().pe_shapes.size()));
}

TEST(DesignSpace, EncodeDecodeRoundTrip) {
  DesignSpace space;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const CandidateDesign c = space.random_candidate(rng);
    const auto actions = space.encode(c);
    ASSERT_EQ(actions.size(), 44u);
    EXPECT_EQ(space.decode(actions), c);
  }
}

TEST(DesignSpace, RandomCandidatesValidAndInRange) {
  DesignSpace space;
  const auto cards = space.cardinalities();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const CandidateDesign c = space.random_candidate(rng);
    EXPECT_TRUE(validate_genotype(c.genotype));
    const auto actions = space.encode(c);
    for (std::size_t t = 0; t < actions.size(); ++t) {
      EXPECT_GE(actions[t], 0);
      EXPECT_LT(actions[t], cards[t]);
    }
  }
}

TEST(DesignSpace, DecodeRejectsWrongLength) {
  DesignSpace space;
  EXPECT_THROW(space.decode(std::vector<int>(43, 0)), std::invalid_argument);
  EXPECT_THROW(space.decode(std::vector<int>(45, 0)), std::invalid_argument);
}

TEST(DesignSpace, DecodeRejectsOutOfRangeHardwareAction) {
  DesignSpace space;
  std::vector<int> actions(44, 0);
  actions[43] = kNumDataflows;  // one past the last dataflow
  EXPECT_THROW(space.decode(actions), std::invalid_argument);
}

TEST(DesignSpace, JointSpaceIsHuge) {
  DesignSpace space;
  // The paper speaks of ~10^15 relevant solutions inside an even larger raw
  // space; our exact count must be at least that.
  EXPECT_GT(space.log10_size(), 15.0);
}

TEST(DesignSpace, CustomConfigSpaceRespected) {
  ConfigSpace cs;
  cs.pe_shapes = {{8, 8}};
  cs.g_buf_kb_options = {256};
  cs.r_buf_byte_options = {128};
  DesignSpace space(cs);
  EXPECT_EQ(space.cardinalities()[40], 1);
  Rng rng(3);
  const CandidateDesign c = space.random_candidate(rng);
  EXPECT_EQ(c.config.pe_rows, 8);
  EXPECT_EQ(c.config.g_buf_kb, 256);
}

}  // namespace
}  // namespace yoso
