#include <cmath>
#include <gtest/gtest.h>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace yoso {
namespace {

Param make_param(float value, float grad) {
  Param p;
  p.value = Tensor({1}, value);
  p.grad = Tensor({1}, grad);
  p.dirty = true;
  return p;
}

TEST(SgdOptimizer, BasicUpdateAndGradReset) {
  Param p = make_param(1.0f, 0.5f);
  SgdOptimizer opt(0.0, 0.0);
  opt.step({&p}, 0.1);
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-7f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
  EXPECT_FALSE(p.dirty);
}

TEST(SgdOptimizer, SkipsCleanParams) {
  Param p = make_param(1.0f, 0.5f);
  p.dirty = false;
  SgdOptimizer opt(0.0, 0.0);
  opt.step({&p}, 0.1);
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.5f);  // untouched
}

TEST(SgdOptimizer, MomentumAccumulates) {
  Param p = make_param(0.0f, 1.0f);
  SgdOptimizer opt(0.9, 0.0);
  opt.step({&p}, 1.0);
  EXPECT_NEAR(p.value[0], -1.0f, 1e-7f);  // m = 1
  p.grad[0] = 1.0f;
  p.dirty = true;
  opt.step({&p}, 1.0);
  // m = 0.9*1 + 1 = 1.9 -> value = -1 - 1.9 = -2.9
  EXPECT_NEAR(p.value[0], -2.9f, 1e-6f);
}

TEST(SgdOptimizer, WeightDecayPullsTowardZero) {
  Param p = make_param(10.0f, 0.0f);
  p.dirty = true;
  SgdOptimizer opt(0.0, 0.1);
  opt.step({&p}, 1.0);
  EXPECT_NEAR(p.value[0], 9.0f, 1e-6f);
}

TEST(SgdOptimizer, MomentumBufferLazilySized) {
  Param p = make_param(1.0f, 1.0f);
  EXPECT_EQ(p.momentum.numel(), 0u);
  SgdOptimizer opt(0.9, 0.0);
  opt.step({&p}, 0.1);
  EXPECT_EQ(p.momentum.numel(), 1u);
}

TEST(CosineLr, Endpoints) {
  EXPECT_NEAR(cosine_lr(0, 100, 0.05, 0.0001), 0.05, 1e-12);
  EXPECT_NEAR(cosine_lr(99, 100, 0.05, 0.0001), 0.0001, 1e-12);
}

TEST(CosineLr, Midpoint) {
  const double mid = cosine_lr(50, 101, 1.0, 0.0);
  EXPECT_NEAR(mid, 0.5, 1e-9);
}

TEST(CosineLr, MonotoneDecreasing) {
  double prev = 1e9;
  for (std::size_t s = 0; s < 50; ++s) {
    const double lr = cosine_lr(s, 50, 0.05, 0.0001);
    EXPECT_LT(lr, prev + 1e-15);
    prev = lr;
  }
}

TEST(CosineLr, DegenerateTotal) {
  EXPECT_DOUBLE_EQ(cosine_lr(0, 1, 0.05, 0.001), 0.001);
  EXPECT_DOUBLE_EQ(cosine_lr(5, 0, 0.05, 0.001), 0.001);
}

TEST(CosineLr, StepBeyondTotalClamps) {
  EXPECT_NEAR(cosine_lr(500, 100, 0.05, 0.0001), 0.0001, 1e-12);
}

}  // namespace
}  // namespace yoso
