#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "arch/zoo.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace yoso {
namespace {

Genotype all_op_genotype(Op op) {
  Genotype g;
  for (int n = 0; n < kInteriorNodes; ++n) {
    g.normal.nodes.push_back({n, n + 1, op, op});
    g.reduction.nodes.push_back({n, n + 1, op, op});
  }
  return g;
}

TEST(CellDepth, ChainIsMaxDepth) {
  const Genotype g = all_op_genotype(Op::kConv3x3);
  EXPECT_EQ(cell_depth(g.normal), kInteriorNodes);
}

TEST(CellDepth, FanoutIsDepthOne) {
  CellGenotype c;
  for (int n = 0; n < kInteriorNodes; ++n)
    c.nodes.push_back({0, 1, Op::kConv3x3, Op::kConv3x3});
  EXPECT_EQ(cell_depth(c), 1);
}

TEST(ArchFeatures, FractionsSumToOne) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto f =
        ArchFeatures::compute(random_genotype(rng), default_skeleton());
    EXPECT_NEAR(f.conv_frac + f.dw_frac + f.pool_frac, 1.0, 1e-12);
    EXPECT_GE(f.k5_frac, 0.0);
    EXPECT_LE(f.k5_frac, 1.0);
    EXPECT_GT(f.log10_macs, 6.0);
    EXPECT_GE(f.loose_normal, 1.0);
    EXPECT_LE(f.loose_normal, 5.0);
  }
}

TEST(ArchFeatures, PureOpMixes) {
  const auto conv =
      ArchFeatures::compute(all_op_genotype(Op::kConv3x3), default_skeleton());
  EXPECT_DOUBLE_EQ(conv.conv_frac, 1.0);
  EXPECT_DOUBLE_EQ(conv.pool_frac, 0.0);
  const auto pool = ArchFeatures::compute(all_op_genotype(Op::kMaxPool3x3),
                                          default_skeleton());
  EXPECT_DOUBLE_EQ(pool.pool_frac, 1.0);
  const auto k5 =
      ArchFeatures::compute(all_op_genotype(Op::kConv5x5), default_skeleton());
  EXPECT_DOUBLE_EQ(k5.k5_frac, 1.0);
}

TEST(AccuracyModel, Deterministic) {
  AccuracyModel m;
  Rng rng(2);
  const Genotype g = random_genotype(rng);
  EXPECT_DOUBLE_EQ(m.test_error(g), m.test_error(g));
  EXPECT_DOUBLE_EQ(m.hypernet_error(g), m.hypernet_error(g));
}

TEST(AccuracyModel, ZooLandsInPaperBand) {
  AccuracyModel m;
  for (const auto& ref : reference_models()) {
    const double err = m.test_error(ref.genotype);
    EXPECT_GT(err, 2.4) << ref.name;
    EXPECT_LT(err, 4.2) << ref.name;
    // Within ~0.5 points of the paper's Table-2 value.
    EXPECT_NEAR(err, ref.paper_test_error, 0.55) << ref.name;
  }
}

TEST(AccuracyModel, PreservesPaperExtremes) {
  // Darts_v2 and PnasNet bracket the Table-2 accuracy range; EnasNet sits
  // within a hair of Darts_v2 in the paper too (2.89 vs 2.82), so a small
  // tolerance absorbs the near-tie.
  AccuracyModel m;
  const double best = m.test_error(reference_model("Darts_v2").genotype);
  const double worst = m.test_error(reference_model("PnasNet").genotype);
  for (const auto& ref : reference_models()) {
    const double err = m.test_error(ref.genotype);
    EXPECT_GE(err, best - 0.08) << ref.name;
    EXPECT_LE(err, worst + 0.08) << ref.name;
  }
}

TEST(AccuracyModel, ConvBeatsPoolHeavy) {
  AccuracyModel m;
  EXPECT_LT(m.test_error(all_op_genotype(Op::kConv3x3)),
            m.test_error(all_op_genotype(Op::kAvgPool3x3)));
}

TEST(AccuracyModel, ErrorsClampedToValidBand) {
  AccuracyModel m;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const Genotype g = random_genotype(rng);
    const double err = m.test_error(g);
    EXPECT_GT(err, 2.0);
    EXPECT_LT(err, 9.5);
    const double h = m.hypernet_error(g);
    EXPECT_GT(h, 0.4);
    EXPECT_LT(h, 90.1);
    EXPECT_NEAR(m.hypernet_accuracy(g), 1.0 - h / 100.0, 1e-12);
  }
}

TEST(AccuracyModel, HypernetUnderperformsFullTraining) {
  // Inherited weights score worse than fully trained models (Fig 5(b)'s
  // proxy axis sits below the true-accuracy axis).
  AccuracyModel m;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Genotype g = random_genotype(rng);
    EXPECT_GT(m.hypernet_error(g), m.test_error(g));
  }
}

TEST(AccuracyModel, HypernetCorrelatesWithTrueError) {
  // The Fig-5(b) property: one-shot scores rank models like full training.
  AccuracyModel m;
  Rng rng(5);
  std::vector<double> proxy, truth;
  for (int i = 0; i < 130; ++i) {
    const Genotype g = random_genotype(rng);
    proxy.push_back(m.hypernet_error(g));
    truth.push_back(m.test_error(g));
  }
  EXPECT_GT(pearson(proxy, truth), 0.75);
  EXPECT_GT(spearman(proxy, truth), 0.7);
}

TEST(AccuracyModel, CustomParamsRespected) {
  AccuracyModelParams p;
  p.error_floor = 5.0;
  p.error_ceil = 6.0;
  AccuracyModel m(default_skeleton(), p);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const double err = m.test_error(random_genotype(rng));
    EXPECT_GE(err, 4.4);  // floor * 0.9 slack for residual
    EXPECT_LE(err, 6.0);
  }
}

TEST(AccuracyModel, DifferentSeedsDifferentResiduals) {
  AccuracyModel a(default_skeleton(), {}, 1);
  AccuracyModel b(default_skeleton(), {}, 2);
  Rng rng(7);
  const Genotype g = random_genotype(rng);
  EXPECT_NE(a.test_error(g), b.test_error(g));
}

}  // namespace
}  // namespace yoso
