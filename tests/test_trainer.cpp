#include <cmath>
#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(PathSamplers, UniformProducesValidGenotypes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(validate_genotype(uniform_path_sampler(rng)));
}

TEST(PathSamplers, BiasedProducesValidButSkewedGenotypes) {
  Rng rng(2);
  int low_input = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const Genotype g = biased_path_sampler(rng);
    EXPECT_TRUE(validate_genotype(g));
    for (const NodeSpec& s : g.normal.nodes) {
      low_input += s.input_a == 0 ? 1 : 0;
      ++total;
    }
  }
  // A uniform sampler would pick input 0 with prob mean(1/2..1/6) ~ 0.29;
  // the biased one must exceed that clearly.
  EXPECT_GT(static_cast<double>(low_input) / total, 0.35);
}

TEST(Trainer, StandaloneLearnsTinyTask) {
  SynthCifar task(10, 10, 7);
  const Dataset train = task.generate(16, 1);
  const Dataset val = task.generate(6, 2);
  Rng rng(3);
  const Genotype g = random_genotype(rng);
  PathNetwork net(tiny_skeleton(10, 6), 5);
  TrainOptions opt;
  opt.epochs = 4;
  opt.batch_size = 20;
  const auto logs = train_standalone(net, g, train, val, opt, rng);
  ASSERT_EQ(logs.size(), 4u);
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  EXPECT_GT(logs.back().val_accuracy, 0.15);  // well above 10% chance
  for (const auto& l : logs) {
    EXPECT_GE(l.val_accuracy, 0.0);
    EXPECT_LE(l.val_accuracy, 1.0);
  }
}

TEST(Trainer, HypernetTrainsWithUniformSampling) {
  SynthCifar task(8, 10, 11);
  const Dataset train = task.generate(8, 1);
  const Dataset val = task.generate(4, 2);
  Rng rng(4);
  PathNetwork net(tiny_skeleton(8, 4), 9);
  TrainOptions opt;
  opt.epochs = 2;
  opt.batch_size = 20;
  const auto logs = train_hypernet(net, train, val, opt, rng);
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_TRUE(std::isfinite(logs.back().train_loss));
  // Training touched many paths, so the bank must hold more params than a
  // single path would create.
  EXPECT_GT(net.param_count(), 2000u);
}

TEST(Trainer, HypernetAcceptsCustomSampler) {
  SynthCifar task(8, 10, 13);
  const Dataset train = task.generate(6, 1);
  const Dataset val = task.generate(3, 2);
  Rng rng(5);
  PathNetwork net(tiny_skeleton(8, 4), 9);
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 20;
  const auto logs =
      train_hypernet(net, train, val, opt, rng, biased_path_sampler);
  EXPECT_EQ(logs.size(), 1u);
}

TEST(Trainer, RejectsBadInputs) {
  SynthCifar task(8, 10, 17);
  const Dataset train = task.generate(4, 1);
  const Dataset empty;
  Rng rng(6);
  PathNetwork net(tiny_skeleton(8, 4), 9);
  const Genotype g = random_genotype(rng);
  TrainOptions opt;
  EXPECT_THROW(train_standalone(net, g, empty, train, opt, rng),
               std::invalid_argument);
  opt.epochs = 0;
  EXPECT_THROW(train_standalone(net, g, train, train, opt, rng),
               std::invalid_argument);
}

TEST(Trainer, DeterministicWithSameSeeds) {
  SynthCifar task(8, 10, 19);
  const Dataset train = task.generate(6, 1);
  const Dataset val = task.generate(3, 2);
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 15;
  Rng rng_g(7);
  const Genotype g = random_genotype(rng_g);

  PathNetwork net1(tiny_skeleton(8, 4), 33);
  Rng rng1(8);
  const auto logs1 = train_standalone(net1, g, train, val, opt, rng1);
  PathNetwork net2(tiny_skeleton(8, 4), 33);
  Rng rng2(8);
  const auto logs2 = train_standalone(net2, g, train, val, opt, rng2);
  EXPECT_DOUBLE_EQ(logs1[0].train_loss, logs2[0].train_loss);
  EXPECT_DOUBLE_EQ(logs1[0].val_accuracy, logs2[0].val_accuracy);
}

}  // namespace
}  // namespace yoso
