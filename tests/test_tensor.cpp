#include <cmath>
#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.numel(), 120u);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.shape_string(), "(2,3,4,5)");
  EXPECT_FALSE(t.empty());
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, NonPositiveDimensionThrows) {
  EXPECT_THROW(Tensor({2, 0, 3}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, FillAndZero) {
  Tensor t({2, 2}, 3.0f);
  EXPECT_FLOAT_EQ(t[0], 3.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(Tensor, NchwIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119 (last element).
  EXPECT_FLOAT_EQ(t[119], 7.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 7.0f);
}

TEST(Tensor, TwoDimIndexing) {
  Tensor t({3, 4});
  t.at2(2, 1) = 5.0f;
  EXPECT_FLOAT_EQ(t[9], 5.0f);
}

TEST(Tensor, ZerosLike) {
  Tensor t({2, 3}, 1.0f);
  const Tensor z = Tensor::zeros_like(t);
  EXPECT_EQ(z.shape(), t.shape());
  EXPECT_FLOAT_EQ(z[0], 0.0f);
}

TEST(Tensor, HeInitStatistics) {
  Rng rng(5);
  Tensor t({64, 64});
  t.he_init(rng, 32);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.0 / 32.0, 0.01);  // He variance 2/fan_in
}

TEST(Tensor, SumSquares) {
  Tensor t({2, 2});
  t[0] = 1.0f;
  t[1] = 2.0f;
  t[2] = -3.0f;
  EXPECT_DOUBLE_EQ(t.sum_squares(), 14.0);
}

}  // namespace
}  // namespace yoso
