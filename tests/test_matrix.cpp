#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace yoso {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MultiplyKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(3);
  Matrix a(4, 7);
  for (auto& v : a.data()) v = rng.normal();
  const Matrix att = a.transpose().transpose();
  for (std::size_t i = 0; i < a.data().size(); ++i)
    EXPECT_DOUBLE_EQ(a.data()[i], att.data()[i]);
}

TEST(Matrix, MatvecMatchesMultiply) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> x = {1.0, 0.0, -1.0};
  const auto y = a.matvec(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MatvecTransposed) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const auto y = a.matvec_transposed(x);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix a(2, 2, 1.0);
  a.add_diagonal(3.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
}

TEST(Cholesky, FactorisationRoundTrip) {
  // A = L0 L0^T for a known lower-triangular L0.
  const Matrix l0 = Matrix::from_rows({{2, 0, 0}, {1, 3, 0}, {0.5, 1, 1.5}});
  const Matrix a = l0 * l0.transpose();
  Cholesky chol(a);
  const Matrix& l = chol.lower();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(l(r, c), l0(r, c), 1e-9);
}

TEST(Cholesky, SolveRecoversVector) {
  Rng rng(9);
  const std::size_t n = 12;
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.normal();
  Matrix a = b * b.transpose();
  a.add_diagonal(0.5);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.normal();
  const auto rhs = a.matvec(x_true);
  Cholesky chol(a);
  const auto x = chol.solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, LogDeterminant) {
  const Matrix a = Matrix::from_rows({{4, 0}, {0, 9}});
  Cholesky chol(a);
  EXPECT_NEAR(chol.log_determinant(), std::log(36.0), 1e-10);
}

TEST(Cholesky, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(Cholesky c(a), std::invalid_argument);
}

TEST(Cholesky, IndefiniteMatrixThrows) {
  const Matrix a = Matrix::from_rows({{1, 0}, {0, -5}});
  EXPECT_THROW(Cholesky c(a), std::runtime_error);
}

TEST(Cholesky, NearSingularRecoversWithJitter) {
  // Rank-deficient Gram matrix; progressive jitter must succeed.
  const Matrix x = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  const Matrix a = x.transpose() * x;
  EXPECT_NO_THROW(Cholesky c(a));
}

TEST(RidgeSolve, RecoversLinearModel) {
  Rng rng(21);
  const std::size_t n = 50, d = 4;
  Matrix x(n, d);
  std::vector<double> w_true = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      x(r, c) = rng.normal();
      acc += x(r, c) * w_true[c];
    }
    y[r] = acc;
  }
  const auto w = ridge_solve(x, y, 0.0);
  for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(w[c], w_true[c], 1e-8);
}

TEST(RidgeSolve, RegularisationShrinks) {
  Rng rng(22);
  Matrix x(30, 2);
  std::vector<double> y(30);
  for (std::size_t r = 0; r < 30; ++r) {
    x(r, 0) = rng.normal();
    x(r, 1) = rng.normal();
    y[r] = 5.0 * x(r, 0);
  }
  const auto w0 = ridge_solve(x, y, 0.0);
  const auto w1 = ridge_solve(x, y, 100.0);
  EXPECT_LT(std::abs(w1[0]), std::abs(w0[0]));
}

TEST(VectorOps, DotAndDistance) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 13.0);
  const std::vector<double> c = {1.0};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
