// Cross-configuration property sweeps of the accelerator model: invariants
// that must hold at every point of the configuration space, not just the
// handful of configs unit tests pin down.

#include <cmath>
#include <gtest/gtest.h>
#include <memory>
#include <tuple>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "arch/zoo.h"

namespace yoso {
namespace {

using ConfigParam = std::tuple<int, int, int, int, int>;  // r, c, gbuf, rbuf, df

class ConfigSweep : public ::testing::TestWithParam<ConfigParam> {
 protected:
  static void SetUpTestSuite() {
    layers_ = std::make_unique<std::vector<Layer>>(extract_layers(
        reference_model("Darts_v1").genotype, default_skeleton()));
  }
  static void TearDownTestSuite() {
    layers_.reset();
  }
  AcceleratorConfig config() const {
    const auto [r, c, g, rb, d] = GetParam();
    return AcceleratorConfig{r, c, g, rb, static_cast<Dataflow>(d)};
  }
  static std::unique_ptr<std::vector<Layer>> layers_;
};

std::unique_ptr<std::vector<Layer>> ConfigSweep::layers_;

TEST_P(ConfigSweep, EnergyBreakdownConsistent) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto res = sim.simulate(*layers_, config());
  EXPECT_TRUE(std::isfinite(res.energy_mj));
  EXPECT_GT(res.energy_mj, 0.0);
  EXPECT_NEAR(res.energy_mj,
              res.dram_mj + res.gbuf_mj + res.rbuf_mj + res.mac_mj +
                  res.static_mj,
              1e-9);
  // Every byte that reaches DRAM transits the global buffer, so gbuf
  // energy per byte being lower never inverts the traffic ordering.
  EXPECT_GE(res.gbuf_mj / sim.tech().gbuf_energy_per_byte(config().g_buf_kb),
            res.dram_mj / sim.tech().e_dram_pj_per_byte - 1e-6);
}

TEST_P(ConfigSweep, CycleLevelWithinAnalyticalBand) {
  SystolicSimulator fast({}, SimFidelity::kAnalytical);
  SystolicSimulator slow({}, SimFidelity::kCycleLevel);
  const auto ra = fast.simulate(*layers_, config());
  const auto rc = slow.simulate(*layers_, config());
  EXPECT_GT(rc.latency_ms, ra.latency_ms * 0.4);
  EXPECT_LT(rc.latency_ms, ra.latency_ms * 2.5);
}

TEST_P(ConfigSweep, BatchEightNeverWorsePerImage) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto b1 = sim.simulate(*layers_, config(), 1);
  const auto b8 = sim.simulate(*layers_, config(), 8);
  EXPECT_LE(b8.energy_mj, b1.energy_mj + 1e-9);
  EXPECT_LE(b8.latency_ms, b1.latency_ms + 1e-9);
}

TEST_P(ConfigSweep, UtilizationAndCyclesSane) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const auto res = sim.simulate(*layers_, config());
  EXPECT_GT(res.mean_utilization, 0.0);
  EXPECT_LE(res.mean_utilization, 1.0);
  double macs = 0.0;
  for (const auto& lr : res.layers) macs += lr.mapping.macs;
  // Total cycles can never beat the absolute peak of the array.
  EXPECT_GE(res.total_cycles, macs / config().num_pes() * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep,
    ::testing::Combine(::testing::Values(8, 16),          // rows
                       ::testing::Values(8, 32),          // cols
                       ::testing::Values(108, 512),       // gbuf KB
                       ::testing::Values(64, 512),        // rbuf B
                       ::testing::Values(0, 1, 2, 3)));   // dataflow

class ZooModelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooModelSweep, SimulationScalesWithModelSize) {
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const AcceleratorConfig cfg{16, 32, 512, 512,
                              Dataflow::kOutputStationary};
  const auto& model = reference_model(GetParam());
  const auto layers = extract_layers(model.genotype, default_skeleton());
  const auto stats = network_stats(layers);
  const auto res = sim.simulate(layers, cfg);
  // Energy per MAC must land in a plausible narrow band (pJ/MAC) — a gross
  // regression in either the MAC counting or the energy model breaks this.
  const double pj_per_mac =
      res.energy_mj * 1e9 / static_cast<double>(stats.total_macs);
  EXPECT_GT(pj_per_mac, 5.0) << GetParam();
  EXPECT_LT(pj_per_mac, 120.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelSweep,
                         ::testing::Values("NasNet-A", "Darts_v1", "Darts_v2",
                                           "AmoebaNet-A", "EnasNet",
                                           "PnasNet"));

}  // namespace
}  // namespace yoso
