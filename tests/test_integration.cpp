// End-to-end integration tests: the full YOSO pipeline (Step 1 fast
// evaluator construction, Step 2 RL search, Step 3 top-N reranking) at
// miniature scale, plus the real-NN path where the trainable HyperNet
// stands in for the accuracy surrogate.

#include <cmath>
#include <gtest/gtest.h>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/two_stage.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace yoso {
namespace {

TEST(Integration, FullPipelineFindsFeasibleCoDesign) {
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = 200, .seed = 31});
  AccurateEvaluator accurate(skeleton,
                             SystolicSimulator({}, SimFidelity::kAnalytical));

  SearchOptions opt;
  opt.iterations = 600;
  opt.top_n = 8;
  opt.reward = energy_opt_reward();
  opt.seed = 17;
  YosoSearch search(space, opt);
  const SearchResult result = search.run(fast, &accurate);

  ASSERT_TRUE(result.best.has_value());
  const RankedCandidate& best = *result.best;
  // At this budget the searcher reliably lands inside the paper's
  // threshold region (9 mJ / 1.2 ms).
  EXPECT_TRUE(best.feasible);
  EXPECT_LE(best.accurate_result.energy_mj, opt.reward.t_eer_mj);
  EXPECT_LE(best.accurate_result.latency_ms, opt.reward.t_lat_ms);
  EXPECT_GT(best.accurate_result.accuracy, 0.94);
}

TEST(Integration, SingleStageBeatsTwoStageOnEnergyAtSimilarError) {
  // The Table-2 property at miniature scale.
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = 250, .seed = 5});
  AccurateEvaluator accurate(skeleton,
                             SystolicSimulator({}, SimFidelity::kAnalytical));
  const RewardParams reward = energy_opt_reward();

  SearchOptions opt;
  opt.iterations = 1200;
  opt.top_n = 10;
  opt.reward = reward;
  opt.seed = 23;
  const SearchResult yoso = YosoSearch(space, opt).run(fast, &accurate);
  ASSERT_TRUE(yoso.best.has_value());

  // Two-stage on a reduced config space for test speed (PE shapes and
  // dataflows still fully covered for the best-config choice to matter).
  ConfigSpace cs = default_config_space();
  cs.g_buf_kb_options = {108, 512};
  cs.r_buf_byte_options = {64, 512};
  DesignSpace small_space(cs);
  AccurateEvaluator evaluator(skeleton,
                              SystolicSimulator({}, SimFidelity::kAnalytical));
  const auto rows = two_stage_baseline(small_space, evaluator, reward);

  double min_two_stage_energy = 1e18;
  for (const auto& row : rows)
    min_two_stage_energy = std::min(min_two_stage_energy,
                                    row.result.energy_mj);
  // YOSO's energy-optimised solution undercuts every two-stage row.
  EXPECT_LT(yoso.best->accurate_result.energy_mj, min_two_stage_energy);
  // ... at a test error inside the two-stage band (same level of precision).
  const double yoso_err = (1.0 - yoso.best->accurate_result.accuracy) * 100.0;
  EXPECT_LT(yoso_err, 4.0);
}

TEST(Integration, RealHyperNetPipelineRanksCandidates) {
  // The real-NN path: train a tiny HyperNet with uniform path sampling,
  // evaluate candidates by weight inheritance, and confirm the scores are
  // usable (finite, in range, not all identical).
  SynthCifar task(10, 10, 3);
  const Dataset train = task.generate(12, 1);
  const Dataset val = task.generate(5, 2);
  const NetworkSkeleton skeleton = tiny_skeleton(10, 6);
  PathNetwork hypernet(skeleton, 77);
  TrainOptions topt;
  topt.epochs = 3;
  topt.batch_size = 24;
  Rng rng(9);
  train_hypernet(hypernet, train, val, topt, rng);

  std::vector<double> scores;
  for (int i = 0; i < 4; ++i) {
    const Genotype g = random_genotype(rng);
    const double acc = hypernet.evaluate(g, val, 25);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
    scores.push_back(acc);
  }
  bool all_same = true;
  for (double s : scores) all_same &= s == scores.front();
  EXPECT_FALSE(all_same);
}

TEST(Integration, LatencyOptimisedSearchIsFasterThanEnergyOptimised) {
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = 200, .seed = 41});
  AccurateEvaluator accurate(skeleton,
                             SystolicSimulator({}, SimFidelity::kAnalytical));

  SearchOptions lat_opt;
  lat_opt.iterations = 800;
  lat_opt.reward = latency_opt_reward();
  lat_opt.seed = 3;
  const SearchResult lat = YosoSearch(space, lat_opt).run(fast, &accurate);

  SearchOptions eer_opt = lat_opt;
  eer_opt.reward = energy_opt_reward();
  const SearchResult eer = YosoSearch(space, eer_opt).run(fast, &accurate);

  ASSERT_TRUE(lat.best.has_value());
  ASSERT_TRUE(eer.best.has_value());
  // The objective shapes the search region: the latency-weighted run's
  // late-phase candidates are faster on average than the energy-weighted
  // run's (individual finalists can cross over, the populations must not).
  auto tail_mean_latency = [](const SearchResult& r) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = r.trace.size() * 3 / 4; i < r.trace.size(); ++i) {
      acc += r.trace[i].result.latency_ms;
      ++n;
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_LT(tail_mean_latency(lat), tail_mean_latency(eer) * 1.05);
}

}  // namespace
}  // namespace yoso
