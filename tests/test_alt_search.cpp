#include <cmath>
#include <gtest/gtest.h>
#include <memory>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/alt_search.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/search.h"

namespace yoso {
namespace {

class AltSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = std::make_unique<DesignSpace>();
    const NetworkSkeleton skeleton = default_skeleton();
    SystolicSimulator sim({}, SimFidelity::kAnalytical);
    fast_ = std::make_unique<FastEvaluator>(*space_, skeleton, sim,
                              FastEvaluatorOptions{.predictor_samples = 150, .seed = 77});
  }
  static void TearDownTestSuite() {
    fast_.reset();
    space_.reset();
  }

  static SearchOptions options(std::size_t iters, std::uint64_t seed = 5) {
    SearchOptions opt;
    opt.iterations = iters;
    opt.top_n = 5;
    opt.trace_every = 10;
    opt.reward = balanced_reward();
    opt.seed = seed;
    return opt;
  }

  static std::unique_ptr<DesignSpace> space_;
  static std::unique_ptr<FastEvaluator> fast_;
};

std::unique_ptr<DesignSpace> AltSearchTest::space_;
std::unique_ptr<FastEvaluator> AltSearchTest::fast_;

TEST(ExpectedImprovement, KnownValues) {
  // Zero variance, mu below best -> 0 improvement.
  EXPECT_NEAR(expected_improvement(1.0, 0.0, 2.0), 0.0, 1e-9);
  // mu well above best with tiny variance -> ~mu - best.
  EXPECT_NEAR(expected_improvement(3.0, 1e-12, 2.0), 1.0, 1e-6);
  // Symmetric case mu == best: EI = sigma/sqrt(2 pi).
  EXPECT_NEAR(expected_improvement(2.0, 4.0, 2.0),
              2.0 / std::sqrt(2.0 * 3.14159265358979), 1e-6);
  // EI is increasing in variance at fixed mu <= best.
  EXPECT_GT(expected_improvement(1.0, 4.0, 2.0),
            expected_improvement(1.0, 1.0, 2.0));
}

TEST_F(AltSearchTest, EvolutionProducesValidResult) {
  EvolutionarySearch evo(*space_, options(150));
  const SearchResult r = evo.run(*fast_, nullptr);
  EXPECT_EQ(r.iterations_run, 150u);
  EXPECT_FALSE(r.finalists.empty());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.best_fast_reward, 0.0);
  EXPECT_FALSE(r.trace.empty());
}

TEST_F(AltSearchTest, EvolutionDeterministicPerSeed) {
  EvolutionarySearch a(*space_, options(80, 9));
  EvolutionarySearch b(*space_, options(80, 9));
  const SearchResult ra = a.run(*fast_, nullptr);
  const SearchResult rb = b.run(*fast_, nullptr);
  EXPECT_DOUBLE_EQ(ra.best_fast_reward, rb.best_fast_reward);
}

TEST_F(AltSearchTest, EvolutionImprovesOverWarmup) {
  EvolutionOptions evo_opt;
  evo_opt.population = 32;
  evo_opt.tournament = 8;
  EvolutionarySearch evo(*space_, options(600, 3), evo_opt);
  const SearchResult r = evo.run(*fast_, nullptr);
  // Mean late-phase reward beats the random warm-up phase.
  double early = 0.0, late = 0.0;
  std::size_t ne = 0, nl = 0;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    if (r.trace[i].iteration < 32) {
      early += r.trace[i].reward;
      ++ne;
    } else if (i >= r.trace.size() * 3 / 4) {
      late += r.trace[i].reward;
      ++nl;
    }
  }
  ASSERT_GT(ne, 0u);
  ASSERT_GT(nl, 0u);
  EXPECT_GT(late / static_cast<double>(nl), early / static_cast<double>(ne));
}

TEST_F(AltSearchTest, BayesOptProducesValidResult) {
  BayesOptOptions bopt;
  bopt.initial_random = 20;
  bopt.refit_every = 20;
  bopt.acquisition_pool = 16;
  BayesOptSearch bo(*space_, options(80), bopt);
  const SearchResult r = bo.run(*fast_, nullptr);
  EXPECT_EQ(r.iterations_run, 80u);
  EXPECT_FALSE(r.finalists.empty());
  ASSERT_TRUE(r.best.has_value());
}

TEST_F(AltSearchTest, BayesOptAtLeastMatchesItsWarmup) {
  BayesOptOptions bopt;
  bopt.initial_random = 25;
  bopt.refit_every = 15;
  bopt.acquisition_pool = 24;
  BayesOptSearch bo(*space_, options(150, 13), bopt);
  const SearchResult r = bo.run(*fast_, nullptr);
  double warm_best = 0.0, total_best = 0.0;
  for (const auto& p : r.trace) {
    if (p.iteration < 25) warm_best = std::max(warm_best, p.reward);
    total_best = std::max(total_best, p.reward);
  }
  EXPECT_GE(total_best, warm_best);
}

TEST_F(AltSearchTest, AllDriversShareFinalistSemantics) {
  // Same options through three drivers: all must produce sorted, distinct
  // finalists.
  auto check = [](const SearchResult& r) {
    for (std::size_t i = 1; i < r.finalists.size(); ++i) {
      EXPECT_GE(r.finalists[i - 1].accurate_reward,
                r.finalists[i].accurate_reward);
      for (std::size_t j = 0; j < i; ++j)
        EXPECT_FALSE(r.finalists[i].candidate == r.finalists[j].candidate);
    }
  };
  EvolutionarySearch evo(*space_, options(120, 21));
  check(evo.run(*fast_, nullptr));
  BayesOptOptions bopt;
  bopt.initial_random = 15;
  bopt.acquisition_pool = 8;
  BayesOptSearch bo(*space_, options(60, 22), bopt);
  check(bo.run(*fast_, nullptr));
}

}  // namespace
}  // namespace yoso
