// Round-trip and rejection tests for the binary artifact format
// (core/artifact.h, spec: docs/ARTIFACTS.md).  The load-bearing property is
// bit-identity: a FastEvaluator restored from an artifact must evaluate
// EXACTLY like the one that was saved — yoso_serve's byte-stable serving
// guarantee rests on it — so the comparisons below are EXPECT_EQ on
// doubles, not near-comparisons.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "accel/simulator.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/artifact.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "predictor/gp.h"
#include "util/rng.h"

namespace yoso {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file_raw(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

// Saves a trained evaluator, loads it back, and pins bit-identical
// evaluations over a pile of random candidates.
void expect_round_trip_bit_identical(GpBackend backend) {
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kAnalytical);
  FastEvaluator trained(space, skeleton, simulator,
                        {.predictor_samples = 150,
                         .seed = 21,
                         .predictor_backend = backend,
                         .inducing_points = 64});

  const std::string path = temp_path(backend == GpBackend::kExact
                                         ? "artifact_exact.bin"
                                         : "artifact_sparse.bin");
  save_fast_evaluator(path, trained, "test_artifact", "round-trip");

  const FastEvaluatorArtifact bundle = load_fast_evaluator_artifact(path);
  EXPECT_EQ(bundle.producer, "test_artifact");
  EXPECT_EQ(bundle.note, "round-trip");
  EXPECT_EQ(bundle.predictor.latency.backend, backend);
  FastEvaluator restored = make_fast_evaluator(bundle);

  Rng rng(77);
  for (int i = 0; i < 25; ++i) {
    const CandidateDesign c = space.random_candidate(rng);
    const EvalResult a = trained.evaluate(c);
    const EvalResult b = restored.evaluate(c);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.latency_ms, b.latency_ms);
    EXPECT_EQ(a.energy_mj, b.energy_mj);
  }
  std::remove(path.c_str());
}

TEST(ArtifactRoundTrip, ExactBackendBitIdentical) {
  expect_round_trip_bit_identical(GpBackend::kExact);
}

TEST(ArtifactRoundTrip, SparseBackendBitIdentical) {
  expect_round_trip_bit_identical(GpBackend::kSparse);
}

TEST(ArtifactFormat, WriterProducesVerifiableContainer) {
  ArtifactWriter writer;
  writer.add_section(ArtifactSection::kMeta, {1, 2, 3});
  writer.add_section(ArtifactSection::kSkeleton, {4, 5});
  EXPECT_TRUE(writer.has_section(ArtifactSection::kMeta));
  EXPECT_FALSE(writer.has_section(ArtifactSection::kGpLatency));
  EXPECT_THROW(writer.add_section(ArtifactSection::kMeta, {9}),
               ContractViolation);

  const ArtifactReader reader = ArtifactReader::from_bytes(writer.to_bytes());
  EXPECT_EQ(reader.version_major(), kArtifactVersionMajor);
  EXPECT_EQ(reader.version_minor(), kArtifactVersionMinor);
  ASSERT_EQ(reader.section_count(), 2u);
  const auto meta = reader.section(ArtifactSection::kMeta);
  ASSERT_EQ(meta.size(), 3u);
  EXPECT_EQ(meta[0], 1u);
  EXPECT_EQ(meta[2], 3u);
  EXPECT_THROW(reader.section(ArtifactSection::kGpEnergy), ContractViolation);
  // File-order ids, the snapshot writer's copy-forward contract.
  const std::vector<std::uint32_t> ids = reader.section_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], static_cast<std::uint32_t>(ArtifactSection::kMeta));
  EXPECT_EQ(ids[1], static_cast<std::uint32_t>(ArtifactSection::kSkeleton));
}

TEST(ArtifactFormat, ChecksumCorruptionRejected) {
  ArtifactWriter writer;
  writer.add_section(ArtifactSection::kMeta,
                     std::vector<std::uint8_t>(64, 0xAB));
  const std::vector<std::uint8_t> good = writer.to_bytes();
  EXPECT_NO_THROW(ArtifactReader::from_bytes(good));

  // Magic (byte 0), header field (byte 9: section count — header CRC),
  // table entry (byte 40), payload (last non-padding byte).
  for (const std::size_t victim :
       {std::size_t{0}, std::size_t{9}, std::size_t{40}, good.size() - 8}) {
    std::vector<std::uint8_t> bad = good;
    bad[victim] ^= 0xFF;
    EXPECT_THROW(ArtifactReader::from_bytes(std::move(bad)),
                 ContractViolation)
        << "corrupted byte " << victim << " was not detected";
  }

  // Truncation is detected too, at any cut point.
  std::vector<std::uint8_t> cut(good.begin(), good.end() - 9);
  EXPECT_THROW(ArtifactReader::from_bytes(std::move(cut)), ContractViolation);

  // And the same through the mmap path.
  const std::string path = temp_path("artifact_corrupt.bin");
  std::vector<std::uint8_t> bad = good;
  bad[good.size() - 8] ^= 0x01;
  write_file_raw(path, bad);
  EXPECT_THROW(ArtifactReader::from_file(path), ContractViolation);
  std::remove(path.c_str());
}

TEST(ArtifactFormat, VersionMajorMismatchRejected) {
  ArtifactWriter writer;
  writer.add_section(ArtifactSection::kMeta, {7});
  std::vector<std::uint8_t> bytes = writer.to_bytes();

  // Bump the major version (u16 LE at offset 4) and re-seal the header CRC
  // (u32 LE at offset 28, covering bytes [0, 28)) so ONLY the version check
  // can reject the file.
  const std::uint16_t next_major = kArtifactVersionMajor + 1;
  bytes[4] = static_cast<std::uint8_t>(next_major & 0xFF);
  bytes[5] = static_cast<std::uint8_t>(next_major >> 8);
  const std::uint32_t fixed_crc =
      crc32(std::span<const std::uint8_t>(bytes.data(), 28));
  for (int i = 0; i < 4; ++i)
    bytes[28 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(fixed_crc >> (8 * i));

  try {
    ArtifactReader::from_bytes(std::move(bytes));
    FAIL() << "major version mismatch was accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(ArtifactFormat, MissingSectionRejectedOnDecode) {
  ArtifactWriter writer;
  ByteWriter meta;
  meta.str("test");
  meta.str("");
  writer.add_section(ArtifactSection::kMeta, meta.take());
  const ArtifactReader reader = ArtifactReader::from_bytes(writer.to_bytes());
  EXPECT_THROW(decode_fast_evaluator(reader), ContractViolation);
}

TEST(ArtifactFormat, ByteReaderRejectsTruncatedPayload) {
  ByteWriter w;
  w.u32(12345);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.u64(), ContractViolation);
  ByteReader r2(w.bytes());
  EXPECT_EQ(r2.u32(), 12345u);
  EXPECT_TRUE(r2.done());
  EXPECT_THROW(r2.u8(), ContractViolation);
}

TEST(ArtifactCodec, SkeletonRoundTrip) {
  const NetworkSkeleton original = tiny_skeleton(12, 6);
  ByteWriter w;
  encode_skeleton(w, original);
  ByteReader r(w.bytes());
  const NetworkSkeleton restored = decode_skeleton(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(restored.input_height, original.input_height);
  EXPECT_EQ(restored.input_width, original.input_width);
  EXPECT_EQ(restored.input_channels, original.input_channels);
  EXPECT_EQ(restored.num_classes, original.num_classes);
  EXPECT_EQ(restored.stem_channels, original.stem_channels);
  ASSERT_EQ(restored.cells.size(), original.cells.size());
  for (std::size_t i = 0; i < original.cells.size(); ++i)
    EXPECT_EQ(restored.cells[i], original.cells[i]);
}

TEST(ArtifactHyperNet, WeightsRoundTripBitIdentical) {
  const NetworkSkeleton skeleton = tiny_skeleton(8, 4);
  Rng rng(31);
  const Genotype path = random_genotype(rng);
  Tensor images({2, 3, 8, 8});
  for (float& v : images.data()) v = static_cast<float>(rng.normal(0.0, 0.5));

  // Materialise the same parameter set in two nets with different seeds.
  PathNetwork saved_net(skeleton, 42);
  PathNetwork loaded_net(skeleton, 9);
  (void)saved_net.forward(path, images);
  (void)loaded_net.forward(path, images);
  saved_net.clear_cache();
  loaded_net.clear_cache();

  ArtifactWriter writer;
  add_hypernet_section(writer, saved_net);
  const ArtifactReader reader = ArtifactReader::from_bytes(writer.to_bytes());
  load_hypernet_section(reader, loaded_net);

  const Tensor expected = saved_net.forward(path, images);
  const Tensor actual = loaded_net.forward(path, images);
  ASSERT_EQ(actual.numel(), expected.numel());
  for (std::size_t i = 0; i < expected.numel(); ++i)
    EXPECT_EQ(actual[i], expected[i]);  // bit-identical, not just close

  // A net that materialised a different parameter set is rejected.
  PathNetwork fresh(skeleton, 1);  // nothing driven: no materialised params
  EXPECT_THROW(load_hypernet_section(reader, fresh), ContractViolation);
}

}  // namespace
}  // namespace yoso
