#include "arch/zoo.h"

#include <gtest/gtest.h>

#include <set>

#include "arch/network.h"

namespace yoso {
namespace {

TEST(Zoo, SixReferenceModels) {
  const auto models = reference_models();
  ASSERT_EQ(models.size(), 6u);
  std::set<std::string> names;
  for (const auto& m : models) names.insert(m.name);
  EXPECT_TRUE(names.count("NasNet-A"));
  EXPECT_TRUE(names.count("Darts_v1"));
  EXPECT_TRUE(names.count("Darts_v2"));
  EXPECT_TRUE(names.count("AmoebaNet-A"));
  EXPECT_TRUE(names.count("EnasNet"));
  EXPECT_TRUE(names.count("PnasNet"));
}

TEST(Zoo, AllGenotypesValid) {
  for (const auto& m : reference_models()) {
    std::string error;
    EXPECT_TRUE(validate_genotype(m.genotype, &error)) << m.name << ": "
                                                       << error;
  }
}

TEST(Zoo, PaperNumbersMatchTable2) {
  EXPECT_DOUBLE_EQ(reference_model("Darts_v2").paper_test_error, 2.82);
  EXPECT_DOUBLE_EQ(reference_model("PnasNet").paper_test_error, 3.63);
  EXPECT_DOUBLE_EQ(reference_model("NasNet-A").paper_search_gpu_days, 1800);
  EXPECT_DOUBLE_EQ(reference_model("AmoebaNet-A").paper_search_gpu_days, 3150);
}

TEST(Zoo, ModelsAreComparablySized) {
  // All references stand in for large published nets; none should be tiny
  // relative to the others (that would turn the Table-2 comparison into a
  // model-size contest instead of a hardware-fit contest).
  const auto skeleton = default_skeleton();
  std::int64_t min_macs = INT64_MAX, max_macs = 0;
  for (const auto& m : reference_models()) {
    const auto stats = network_stats(extract_layers(m.genotype, skeleton));
    min_macs = std::min(min_macs, stats.total_macs);
    max_macs = std::max(max_macs, stats.total_macs);
  }
  EXPECT_GT(min_macs, 100'000'000);
  EXPECT_LT(max_macs, 400'000'000);
  EXPECT_LT(static_cast<double>(max_macs) / min_macs, 2.5);
}

TEST(Zoo, GenotypesAreDistinct) {
  const auto models = reference_models();
  for (std::size_t i = 0; i < models.size(); ++i)
    for (std::size_t j = i + 1; j < models.size(); ++j)
      EXPECT_FALSE(models[i].genotype == models[j].genotype)
          << models[i].name << " vs " << models[j].name;
}

TEST(Zoo, LookupByNameThrowsOnUnknown) {
  EXPECT_THROW(reference_model("ResNet50"), std::invalid_argument);
  EXPECT_EQ(reference_model("EnasNet").name, "EnasNet");
}

}  // namespace
}  // namespace yoso
