#include <gtest/gtest.h>
#include <sstream>

#include "core/design_space.h"
#include "core/search.h"
#include "core/trace_io.h"
#include "util/rng.h"

namespace yoso {
namespace {

SearchResult make_result(std::size_t points) {
  DesignSpace space;
  Rng rng(7);
  SearchResult r;
  for (std::size_t i = 0; i < points; ++i) {
    SearchTracePoint p;
    p.iteration = i * 10;
    p.reward = 1.0 + 0.01 * static_cast<double>(i);
    p.result = {0.95, 0.8, 5.0 + static_cast<double>(i)};
    p.candidate = space.random_candidate(rng);
    r.trace.push_back(std::move(p));

    RankedCandidate f;
    f.candidate = space.random_candidate(rng);
    f.fast_reward = 2.0;
    f.accurate_reward = 1.9;
    f.accurate_result = {0.96, 0.7, 4.5};
    f.feasible = i % 2 == 0;
    r.finalists.push_back(std::move(f));
  }
  return r;
}

TEST(TraceIo, RoundTrip) {
  const SearchResult r = make_result(5);
  std::ostringstream os;
  write_trace_csv(os, r);
  std::istringstream is(os.str());
  const auto trace = read_trace_csv(is);
  ASSERT_EQ(trace.size(), r.trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].iteration, r.trace[i].iteration);
    EXPECT_NEAR(trace[i].reward, r.trace[i].reward, 1e-9);
    EXPECT_NEAR(trace[i].result.energy_mj, r.trace[i].result.energy_mj, 1e-9);
    EXPECT_EQ(trace[i].candidate, r.trace[i].candidate);
  }
}

TEST(TraceIo, HeaderMismatchThrows) {
  std::istringstream is("bogus,header\n");
  EXPECT_THROW(read_trace_csv(is), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(read_trace_csv(empty), std::invalid_argument);
}

TEST(TraceIo, MalformedRowNamesLine) {
  const SearchResult r = make_result(1);
  std::ostringstream os;
  write_trace_csv(os, r);
  const std::string text = os.str() + "not,enough\n";
  std::istringstream is(text);
  try {
    read_trace_csv(is);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, BlankLinesSkipped) {
  const SearchResult r = make_result(2);
  std::ostringstream os;
  write_trace_csv(os, r);
  std::istringstream is(os.str() + "\n\n");
  EXPECT_EQ(read_trace_csv(is).size(), 2u);
}

TEST(TraceIo, FinalistsCsvWellFormed) {
  const SearchResult r = make_result(3);
  std::ostringstream os;
  write_finalists_csv(os, r);
  const std::string text = os.str();
  // Header + 3 rows.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(text.find("rank,fast_reward"), std::string::npos);
  EXPECT_NE(text.find("normal="), std::string::npos);
}

}  // namespace
}  // namespace yoso
