#include <gtest/gtest.h>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "nn/cell.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

CellGenotype chain_cell(Op op = Op::kConv3x3) {
  CellGenotype c;
  for (int n = 0; n < kInteriorNodes; ++n)
    c.nodes.push_back({n, n + 1, op, op});
  return c;
}

CellGenotype fanout_cell() {
  // All nodes read the two inputs -> 5 loose ends.
  CellGenotype c;
  for (int n = 0; n < kInteriorNodes; ++n)
    c.nodes.push_back({0, 1, Op::kDwConv3x3, Op::kMaxPool3x3});
  return c;
}

TEST(OpBank, CreatesModulesLazilyAndCachesThem) {
  OpBank bank(4, false, 1);
  EXPECT_EQ(bank.size(), 0u);
  Module* a = bank.edge(2, 0, Op::kConv3x3);
  EXPECT_EQ(bank.size(), 1u);
  Module* b = bank.edge(2, 0, Op::kConv3x3);
  EXPECT_EQ(a, b);
  bank.edge(2, 1, Op::kConv3x3);
  bank.edge(2, 0, Op::kConv5x5);
  EXPECT_EQ(bank.size(), 3u);
}

TEST(OpBank, DeterministicWeightsPerEdge) {
  OpBank bank1(4, false, 99);
  OpBank bank2(4, false, 99);
  std::vector<Param*> p1, p2;
  bank1.edge(3, 1, Op::kConv3x3)->collect_params(p1);
  bank2.edge(3, 1, Op::kConv3x3)->collect_params(p2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i)
    for (std::size_t j = 0; j < p1[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(p1[i]->value[j], p2[i]->value[j]);
}

TEST(CellModule, NormalCellPreservesShape) {
  Rng rng(1);
  CellModule cell(4, false, 7);
  const Tensor s0 = random_tensor({2, 6, 8, 8}, rng);
  const Tensor s1 = random_tensor({2, 6, 8, 8}, rng);
  const CellGenotype path = chain_cell();
  const Tensor out = cell.forward(path, s0, s1);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), cell.out_channels(path));
  EXPECT_EQ(out.dim(2), 8);
  EXPECT_EQ(out.dim(3), 8);
}

TEST(CellModule, ReductionCellHalvesSpatial) {
  Rng rng(2);
  CellModule cell(8, true, 7);
  const Tensor s0 = random_tensor({1, 6, 8, 8}, rng);
  const Tensor s1 = random_tensor({1, 6, 8, 8}, rng);
  const Tensor out = cell.forward(chain_cell(), s0, s1);
  EXPECT_EQ(out.dim(2), 4);
  EXPECT_EQ(out.dim(3), 4);
}

TEST(CellModule, OutChannelsTracksLooseEnds) {
  CellModule cell(4, false, 7);
  EXPECT_EQ(cell.out_channels(chain_cell()), 4);       // 1 loose end
  EXPECT_EQ(cell.out_channels(fanout_cell()), 20);     // 5 loose ends
}

TEST(CellModule, MismatchedInputsAligned) {
  // s0 at 8x8 (pre-reduction), s1 at 4x4: pre0 must stride.
  Rng rng(3);
  CellModule cell(4, false, 7);
  const Tensor s0 = random_tensor({1, 6, 8, 8}, rng);
  const Tensor s1 = random_tensor({1, 6, 4, 4}, rng);
  const Tensor out = cell.forward(fanout_cell(), s0, s1);
  EXPECT_EQ(out.dim(2), 4);
}

TEST(CellModule, InvalidPathThrows) {
  Rng rng(4);
  CellModule cell(4, false, 7);
  CellGenotype bad = chain_cell();
  bad.nodes[0].input_b = 6;
  const Tensor s = random_tensor({1, 4, 4, 4}, rng);
  EXPECT_THROW(cell.forward(bad, s, s), std::invalid_argument);
}

TEST(CellModule, BackwardShapesMatchInputs) {
  Rng rng(5);
  CellModule cell(4, false, 7);
  const Tensor s0 = random_tensor({2, 5, 6, 6}, rng);
  const Tensor s1 = random_tensor({2, 7, 6, 6}, rng);
  const Tensor out = cell.forward(fanout_cell(), s0, s1);
  const auto [g0, g1] = cell.backward(Tensor(out.shape(), 1.0f));
  EXPECT_EQ(g0.shape(), s0.shape());
  EXPECT_EQ(g1.shape(), s1.shape());
}

TEST(CellModule, BackwardWithoutForwardThrows) {
  CellModule cell(4, false, 7);
  EXPECT_THROW(cell.backward(Tensor({1, 4, 4, 4})), std::logic_error);
}

TEST(CellModule, GradientCheckThroughCell) {
  // End-to-end numerical check through the DAG (small sizes).
  Rng rng(6);
  CellModule cell(2, false, 11);
  CellGenotype path;
  path.nodes.push_back({0, 1, Op::kConv3x3, Op::kAvgPool3x3});
  path.nodes.push_back({2, 0, Op::kDwConv3x3, Op::kConv3x3});
  path.nodes.push_back({1, 3, Op::kMaxPool3x3, Op::kConv3x3});
  path.nodes.push_back({2, 4, Op::kConv3x3, Op::kDwConv3x3});
  path.nodes.push_back({5, 0, Op::kAvgPool3x3, Op::kConv3x3});

  Tensor s0 = random_tensor({1, 2, 3, 3}, rng);
  Tensor s1 = random_tensor({1, 2, 3, 3}, rng);
  Tensor out = cell.forward(path, s0, s1);
  Tensor v = random_tensor(out.shape(), rng);
  auto readout = [&](const Tensor& y) {
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y[i]) * v[i];
    return acc;
  };
  auto [g0, g1] = cell.backward(v);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < s0.numel(); i += 3) {
    Tensor sp = s0;
    sp[i] += eps;
    Tensor sm = s0;
    sm[i] -= eps;
    cell.clear_cache();
    const double lp = readout(cell.forward(path, sp, s1));
    cell.clear_cache();
    const double lm = readout(cell.forward(path, sm, s1));
    cell.clear_cache();
    EXPECT_NEAR(g0[i], (lp - lm) / (2.0 * eps), 5e-2) << "s0 grad " << i;
  }
  for (std::size_t i = 0; i < s1.numel(); i += 3) {
    Tensor sp = s1;
    sp[i] += eps;
    Tensor sm = s1;
    sm[i] -= eps;
    cell.clear_cache();
    const double lp = readout(cell.forward(path, s0, sp));
    cell.clear_cache();
    const double lm = readout(cell.forward(path, s0, sm));
    cell.clear_cache();
    EXPECT_NEAR(g1[i], (lp - lm) / (2.0 * eps), 5e-2) << "s1 grad " << i;
  }
}

TEST(CellModule, DuplicateEdgeInOneNodeIsSafe) {
  // Both branches of a node pick the identical (input, op) edge: the shared
  // module is called twice and must backprop via its cache stack.
  Rng rng(7);
  CellModule cell(3, false, 13);
  CellGenotype path;
  path.nodes.push_back({1, 1, Op::kConv3x3, Op::kConv3x3});  // duplicate edge
  for (int n = 1; n < kInteriorNodes; ++n)
    path.nodes.push_back({n + 1, n + 1, Op::kAvgPool3x3, Op::kMaxPool3x3});
  const Tensor s = random_tensor({1, 3, 4, 4}, rng);
  const Tensor out = cell.forward(path, s, s);
  EXPECT_NO_THROW(cell.backward(Tensor(out.shape(), 1.0f)));
}

TEST(CellModule, ParamsGrowWithDistinctPaths) {
  Rng rng(8);
  CellModule cell(2, false, 17);
  const Tensor s = random_tensor({1, 2, 4, 4}, rng);
  std::vector<Param*> params;
  cell.collect_params(params);
  EXPECT_TRUE(params.empty());
  cell.forward(chain_cell(Op::kConv3x3), s, s);
  cell.clear_cache();
  params.clear();
  cell.collect_params(params);
  const std::size_t after_first = params.size();
  EXPECT_GT(after_first, 0u);
  cell.forward(chain_cell(Op::kConv5x5), s, s);
  cell.clear_cache();
  params.clear();
  cell.collect_params(params);
  EXPECT_GT(params.size(), after_first);
}

TEST(CellModule, PoolOnlyPathHasOnlyPreprocessParams) {
  Rng rng(9);
  CellModule cell(2, false, 19);
  CellGenotype pools;
  for (int n = 0; n < kInteriorNodes; ++n)
    pools.nodes.push_back({0, 1, Op::kMaxPool3x3, Op::kAvgPool3x3});
  const Tensor s = random_tensor({1, 2, 4, 4}, rng);
  cell.forward(pools, s, s);
  cell.clear_cache();
  std::vector<Param*> params;
  cell.collect_params(params);
  // Only the two preprocessing 1x1 convs have weights.
  EXPECT_EQ(params.size(), 2u);
}

}  // namespace
}  // namespace yoso
