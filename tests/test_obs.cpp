// Observability layer contracts (DESIGN.md §13): registry determinism, the
// span LIFO discipline, export well-formedness, and the disabled no-op path.
//
// The registry and trace collector are process-wide, so every test starts
// by resetting them and restoring obs::set_enabled(false) on exit.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "base/contract.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::metrics_registry().reset();
    obs::reset_tracing();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::metrics_registry().reset();
    obs::reset_tracing();
  }
};

// Scans a JSON document with a minimal state machine: strings (with escape
// handling) are skipped, braces and brackets must nest and balance.  Enough
// to catch unterminated strings, trailing commas before ']' / '}', and
// unbalanced structure in the emitted documents.
void expect_well_formed_json(const std::string& doc) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (const char c : doc) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced close in: " << doc;
        ASSERT_EQ(stack.back(), c) << "mismatched close in: " << doc;
        ASSERT_NE(prev_significant, ',') << "trailing comma in: " << doc;
        stack.pop_back();
        break;
      default: break;
    }
    if (c != ' ' && c != '\n' && c != '\t') prev_significant = c;
  }
  EXPECT_FALSE(in_string) << "unterminated string in: " << doc;
  EXPECT_TRUE(stack.empty()) << "unclosed scope in: " << doc;
}

TEST_F(ObsTest, DisabledInstrumentsAreNoOps) {
  ASSERT_FALSE(obs::enabled());
  obs::counter_add("noop.counter", 5);
  obs::gauge_set("noop.gauge", 3.5);
  obs::histogram_observe("noop.histogram", 1.0);
  obs::metrics_registry().counter("noop.handle").add(7);
  const obs::MetricsSnapshot snap = obs::metrics_registry().snapshot();
  for (const auto& c : snap.counters) EXPECT_EQ(c.value, 0u) << c.name;
  for (const auto& g : snap.gauges) EXPECT_EQ(g.value, 0.0) << g.name;
  for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  {
    YOSO_TRACE_SPAN("noop.scope");
    obs::begin_span("noop.manual");
    obs::end_span("noop.manual");  // balanced pair while off: no-op
  }
  for (const auto& a : obs::summarize_spans())
    EXPECT_TRUE(a.name.rfind("noop.", 0) != 0) << a.name;
}

TEST_F(ObsTest, CounterGaugeRoundTrip) {
  obs::set_enabled(true);
  obs::Counter& c = obs::metrics_registry().counter("t.counter");
  c.add();
  c.add(4);
  obs::counter_add("t.counter", 10);  // the free function hits the same node
  EXPECT_EQ(c.value(), 15u);
  obs::gauge_set("t.gauge", 2.25);
  EXPECT_EQ(obs::metrics_registry().gauge("t.gauge").value(), 2.25);
}

TEST_F(ObsTest, HistogramBucketsAreUpperBoundInclusive) {
  const double bounds[] = {1.0, 2.0, 5.0};
  obs::Histogram h{std::span<const double>(bounds)};
  obs::set_enabled(true);
  h.observe(0.5);  // <= 1.0            -> bucket 0
  h.observe(1.0);  // == bound, bucket 0 (v <= bounds[i])
  h.observe(1.5);  // -> bucket 1
  h.observe(5.0);  // -> bucket 2
  h.observe(99.0);  // -> overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 99.0);
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
  const double bad[] = {1.0, 1.0, 2.0};
  EXPECT_THROW(obs::Histogram{std::span<const double>(bad)},
               ContractViolation);
}

TEST_F(ObsTest, ResetZeroesValuesButHandlesStayValid) {
  obs::set_enabled(true);
  obs::Counter& c = obs::metrics_registry().counter("t.persistent");
  c.add(3);
  obs::metrics_registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the pre-reset handle still reaches the live node
  EXPECT_EQ(obs::metrics_registry().counter("t.persistent").value(), 2u);
}

// The acceptance bar for snapshot determinism: the same logical workload
// must produce byte-identical "det.*" metrics regardless of how many
// threads carried it.  (pool.* timing counters are excluded by name —
// busy/idle nanoseconds are real measurements and legitimately vary.)
TEST_F(ObsTest, SnapshotIsDeterministicAcrossThreadCounts) {
  obs::set_enabled(true);
  const std::size_t items = 4096;
  std::vector<std::string> rendered;
  for (const std::size_t workers : {0u, 1u, 7u}) {  // 1, 2 and 8 threads
    obs::metrics_registry().reset();
    ThreadPool pool(workers);
    pool.parallel_for(0, items, [](std::size_t i) {
      obs::counter_add("det.items");
      obs::counter_add("det.weighted", i % 3);
      obs::histogram_observe("det.values", 1.0);
    });
    const obs::MetricsSnapshot snap = obs::metrics_registry().snapshot();
    std::ostringstream os;
    for (const auto& c : snap.counters)
      if (c.name.rfind("det.", 0) == 0) os << c.name << "=" << c.value << ";";
    for (const auto& h : snap.histograms)
      if (h.name.rfind("det.", 0) == 0) {
        os << h.name << " count=" << h.count << " sum=" << h.sum << " [";
        for (const auto b : h.buckets) os << b << ",";
        os << "];";
      }
    rendered.push_back(os.str());
  }
  EXPECT_NE(rendered[0].find("det.items=4096"), std::string::npos);
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
}

TEST_F(ObsTest, SnapshotListsAreNameSorted) {
  obs::set_enabled(true);
  obs::counter_add("t.zebra");
  obs::counter_add("t.alpha");
  obs::counter_add("t.middle");
  const obs::MetricsSnapshot snap = obs::metrics_registry().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST_F(ObsTest, MetricsJsonIsWellFormedAndByteStable) {
  obs::set_enabled(true);
  obs::counter_add("t.json_counter", 3);
  obs::gauge_set("t.json_gauge", 0.5);
  obs::histogram_observe("t.json_histogram", 2.0);
  std::ostringstream a, b;
  obs::write_metrics_json(a, obs::metrics_registry().snapshot());
  obs::write_metrics_json(b, obs::metrics_registry().snapshot());
  expect_well_formed_json(a.str());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"t.json_counter\": 3"), std::string::npos);
}

// The next four tests exercise YOSO_TRACE_SPAN itself; with -DYOSO_OBS=OFF
// the macro expands to nothing, so they skip rather than assert on spans
// that were never recorded.
TEST_F(ObsTest, SpanAggregatesNestAndAttributeSelfTime) {
#ifdef YOSO_OBS_DISABLED
  GTEST_SKIP() << "YOSO_TRACE_SPAN compiled out (-DYOSO_OBS=OFF)";
#endif
  obs::set_enabled(true);
  {
    YOSO_TRACE_SPAN("t.parent");
    for (int i = 0; i < 3; ++i) {
      YOSO_TRACE_SPAN("t.child");
    }
  }
  std::uint64_t parent_total = 0, parent_self = 0, child_total = 0;
  for (const obs::SpanAggregate& a : obs::summarize_spans()) {
    if (a.name == "t.parent") {
      EXPECT_EQ(a.count, 1u);
      parent_total = a.total_ns;
      parent_self = a.self_ns;
    }
    if (a.name == "t.child") {
      EXPECT_EQ(a.count, 3u);
      child_total = a.total_ns;
    }
  }
  EXPECT_GT(parent_total, 0u);
  EXPECT_LE(child_total, parent_total);
  EXPECT_EQ(parent_self, parent_total - child_total);
}

TEST_F(ObsTest, UnbalancedOrCrossedScopesViolateTheContract) {
  obs::set_enabled(true);
  EXPECT_THROW(obs::end_span("t.never_opened"), ContractViolation);
  obs::begin_span("t.outer");
  obs::begin_span("t.inner");
  EXPECT_THROW(obs::end_span("t.outer"), ContractViolation);  // crossed
  obs::end_span("t.inner");
  obs::end_span("t.outer");
  obs::begin_span("t.still_open");
  EXPECT_THROW(obs::reset_tracing(), ContractViolation);
  obs::end_span("t.still_open");
}

TEST_F(ObsTest, SpanOpenedWhileEnabledClosesAfterDisable) {
#ifdef YOSO_OBS_DISABLED
  GTEST_SKIP() << "YOSO_TRACE_SPAN compiled out (-DYOSO_OBS=OFF)";
#endif
  obs::set_enabled(true);
  {
    YOSO_TRACE_SPAN("t.straddling");
    obs::set_enabled(false);
  }  // must not throw, and must leave the stack balanced
  obs::set_enabled(true);
  bool found = false;
  for (const obs::SpanAggregate& a : obs::summarize_spans())
    if (a.name == "t.straddling") found = true;
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ChromeTraceRoundTripsThroughTheParserCheck) {
#ifdef YOSO_OBS_DISABLED
  GTEST_SKIP() << "YOSO_TRACE_SPAN compiled out (-DYOSO_OBS=OFF)";
#endif
  obs::set_enabled(true);
  {
    YOSO_TRACE_SPAN("t.export_outer");
    YOSO_TRACE_SPAN("t.export_inner");
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string doc = os.str();
  expect_well_formed_json(doc);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"t.export_outer\""), std::string::npos);
  EXPECT_NE(doc.find("\"t.export_inner\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, RingDropsOldestEventsButAggregatesStayExact) {
#ifdef YOSO_OBS_DISABLED
  GTEST_SKIP() << "YOSO_TRACE_SPAN compiled out (-DYOSO_OBS=OFF)";
#endif
  obs::set_enabled(true);
  obs::set_trace_capacity(8);
  // The capacity applies to buffers registered after the call, so record
  // from a fresh thread.
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i) {
      YOSO_TRACE_SPAN("t.flood");
    }
  });
  recorder.join();
  obs::set_trace_capacity(65536);
  EXPECT_GE(obs::trace_events_dropped(), 92u);
  for (const obs::SpanAggregate& a : obs::summarize_spans()) {
    if (a.name == "t.flood") {
      EXPECT_EQ(a.count, 100u);
    }
  }
}

TEST_F(ObsTest, PhaseTableShowsPhaseRowsSharesAndSum) {
  std::vector<obs::SpanAggregate> aggregates;
  aggregates.push_back({"phase.search", 1, 500'000'000ull, 500'000'000ull});
  aggregates.push_back({"phase.outputs", 1, 250'000'000ull, 250'000'000ull});
  aggregates.push_back({"eval.fast_batch", 7, 123ull, 123ull});
  const std::string table = obs::render_phase_table(aggregates, 1.0);
  EXPECT_NE(table.find("search"), std::string::npos);
  EXPECT_NE(table.find("50.0%"), std::string::npos);
  EXPECT_NE(table.find("outputs"), std::string::npos);
  EXPECT_NE(table.find("25.0%"), std::string::npos);
  EXPECT_NE(table.find("[sum]"), std::string::npos);
  EXPECT_NE(table.find("75.0%"), std::string::npos);
  // Non-phase spans are aggregate-only; they never show up as phase rows.
  EXPECT_EQ(table.find("fast_batch"), std::string::npos);
}

}  // namespace
}  // namespace yoso
