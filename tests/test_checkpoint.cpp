#include <gtest/gtest.h>
#include <sstream>

#include "rl/controller.h"
#include "rl/param_store.h"
#include "rl/reinforce.h"
#include "util/rng.h"

namespace yoso {
namespace {

std::vector<int> cards() { return {3, 4, 5}; }

TEST(ParamStoreCheckpoint, RoundTrip) {
  ParamStore a;
  Rng rng(1);
  const ParamView v = a.alloc(20, rng, 0.5);
  // Take an Adam step so moments are non-trivial.
  for (auto& g : a.grad(v)) g = 0.3;
  a.adam_step(0.01);

  std::ostringstream os;
  a.save(os);

  ParamStore b;
  Rng rng2(99);  // different init — must be overwritten by load
  const ParamView vb = b.alloc(20, rng2, 0.5);
  std::istringstream is(os.str());
  b.load(is);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(b.value(vb)[i], a.value(v)[i]);

  // Subsequent identical updates evolve identically (Adam state restored).
  for (auto& g : a.grad(v)) g = -0.2;
  for (auto& g : b.grad(vb)) g = -0.2;
  a.adam_step(0.01);
  b.adam_step(0.01);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(b.value(vb)[i], a.value(v)[i]);
}

TEST(ParamStoreCheckpoint, RejectsMismatch) {
  ParamStore a;
  Rng rng(1);
  a.alloc(10, rng);
  std::ostringstream os;
  a.save(os);

  ParamStore b;
  b.alloc(11, rng);
  std::istringstream is(os.str());
  EXPECT_THROW(b.load(is), std::invalid_argument);

  std::istringstream bad("not-a-checkpoint 3 0\n");
  EXPECT_THROW(a.load(bad), std::invalid_argument);
  std::istringstream truncated("yoso-paramstore-v1 10 0\n1 2 3\n");
  EXPECT_THROW(a.load(truncated), std::invalid_argument);
}

TEST(ControllerCheckpoint, PolicySurvivesRoundTrip) {
  LstmController trained(cards(), {});
  // Teach it to prefer the last action at every step.
  Rng rng(3);
  for (int it = 0; it < 400; ++it) {
    const Episode ep = trained.sample(rng);
    double r = 0.0;
    for (std::size_t t = 0; t < ep.actions.size(); ++t)
      r += ep.actions[t] == cards()[t] - 1 ? 1.0 : 0.0;
    trained.accumulate_gradient(ep, r / 3.0 - 0.5, 1e-4);
    trained.update(0.02);
  }
  const auto argmax_before = trained.argmax_actions();

  std::ostringstream os;
  trained.save(os);

  LstmController restored(cards(), {});
  EXPECT_NE(restored.argmax_actions(), argmax_before);  // fresh weights
  std::istringstream is(os.str());
  restored.load(is);
  EXPECT_EQ(restored.argmax_actions(), argmax_before);
}

TEST(ControllerCheckpoint, RejectsDifferentActionSpace) {
  LstmController a(cards(), {});
  std::ostringstream os;
  a.save(os);
  {
    LstmController wrong({3, 4}, {});
    std::istringstream is(os.str());
    EXPECT_THROW(wrong.load(is), std::invalid_argument);
  }
  {
    LstmController wrong({3, 4, 6}, {});
    std::istringstream is(os.str());
    EXPECT_THROW(wrong.load(is), std::invalid_argument);
  }
  {
    ControllerOptions opt;
    opt.hidden_size = 64;
    LstmController wrong(cards(), opt);
    std::istringstream is(os.str());
    EXPECT_THROW(wrong.load(is), std::invalid_argument);
  }
}

TEST(ControllerCheckpoint, ResumedTrainingContinuesImproving) {
  LstmController first(cards(), {});
  ReinforceTrainer t1(first, {});
  Rng rng(5);
  auto reward_of = [](const Episode& ep) {
    double r = 0.0;
    for (int a : ep.actions) r += a == 0 ? 1.0 : 0.0;
    return r / 3.0;
  };
  for (int it = 0; it < 300; ++it) {
    const Episode ep = t1.propose(rng);
    t1.feedback(ep, reward_of(ep));
  }
  std::ostringstream os;
  first.save(os);

  LstmController second(cards(), {});
  std::istringstream is(os.str());
  second.load(is);
  ReinforceTrainer t2(second, {});
  for (int it = 0; it < 300; ++it) {
    const Episode ep = t2.propose(rng);
    t2.feedback(ep, reward_of(ep));
  }
  // After resuming, the policy should strongly prefer action 0 everywhere.
  const auto best = second.argmax_actions();
  int zeros = 0;
  for (int a : best) zeros += a == 0 ? 1 : 0;
  EXPECT_EQ(zeros, 3);
}

}  // namespace
}  // namespace yoso
