// Sparse GP backend: deterministic inducing selection, batched prediction
// parity with per-row calls (chunk seams, thread counts), rank-1 update
// parity against a naive from-scratch rebuild of the information matrix,
// distance-build accounting, the predict_means_pair fingerprint contract,
// and an exact-vs-sparse accuracy bound on seeded simulator samples.

#include <cmath>
#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "accel/tech.h"
#include "arch/network.h"
#include "base/contract.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

struct GpData {
  Matrix x;
  std::vector<double> y;
  Matrix queries;
};

GpData make_data(std::size_t n, std::size_t d, std::size_t nq,
                 std::uint64_t seed) {
  Rng rng(seed);
  GpData data;
  data.x = Matrix(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      data.x(r, c) = rng.uniform(-2.0, 2.0);
      s += data.x(r, c);
    }
    data.y.push_back(std::sin(s) + 0.1 * rng.normal());
  }
  data.queries = Matrix(nq, d);
  for (std::size_t r = 0; r < nq; ++r)
    for (std::size_t c = 0; c < d; ++c)
      data.queries(r, c) = rng.uniform(-2.0, 2.0);
  return data;
}

std::vector<double> query_row(const Matrix& q, std::size_t r) {
  std::vector<double> row(q.cols());
  for (std::size_t c = 0; c < q.cols(); ++c) row[c] = q(r, c);
  return row;
}

GpRegressor sparse_gp(std::size_t m, bool tune = true) {
  return GpRegressor({}, tune, GpBackend::kSparse, m);
}

double rbf(const GpHyperParams& hp, std::span<const double> a,
           std::span<const double> b) {
  return hp.signal_variance *
         std::exp(-squared_distance(a, b) /
                  (2.0 * hp.lengthscale * hp.lengthscale));
}

TEST(GpSparseTest, BatchMeansBitIdenticalToPerRowAcrossChunkSeams) {
  const GpData d = make_data(300, 5, 600, 3);
  GpRegressor gp = sparse_gp(48);
  gp.fit(d.x, d.y);
  EXPECT_EQ(gp.inducing_count(), 48u);
  const std::vector<double> batch = gp.predict_batch(d.queries);
  ASSERT_EQ(batch.size(), d.queries.rows());
  for (const std::size_t r : {0u, 1u, 255u, 256u, 257u, 511u, 512u, 599u})
    EXPECT_DOUBLE_EQ(batch[r], gp.predict(query_row(d.queries, r)))
        << "row " << r;
}

TEST(GpSparseTest, BatchVarianceBitIdenticalToPerRow) {
  const GpData d = make_data(200, 4, 73, 5);
  GpRegressor gp = sparse_gp(32);
  gp.fit(d.x, d.y);
  const auto batch = gp.predict_batch_with_variance(d.queries);
  ASSERT_EQ(batch.size(), d.queries.rows());
  for (std::size_t r = 0; r < d.queries.rows(); ++r) {
    const auto [mu, var] = gp.predict_with_variance(query_row(d.queries, r));
    EXPECT_DOUBLE_EQ(batch[r].first, mu) << "row " << r;
    EXPECT_DOUBLE_EQ(batch[r].second, var) << "row " << r;
    EXPECT_GE(batch[r].second, 0.0);
  }
}

TEST(GpSparseTest, PoolResultsBitIdenticalAcrossThreadCounts) {
  const GpData d = make_data(260, 6, 90, 11);
  GpRegressor gp = sparse_gp(40);
  gp.fit(d.x, d.y);
  const std::vector<double> serial = gp.predict_batch(d.queries, nullptr);
  const auto serial_var = gp.predict_batch_with_variance(d.queries, nullptr);
  // Worker counts 0/1/7 = total thread counts 1/2/8.
  for (const std::size_t workers : {0u, 1u, 7u}) {
    ThreadPool pool(workers);
    const std::vector<double> pooled = gp.predict_batch(d.queries, &pool);
    const auto pooled_var = gp.predict_batch_with_variance(d.queries, &pool);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      ASSERT_EQ(pooled[r], serial[r]) << "workers=" << workers << " r=" << r;
      ASSERT_EQ(pooled_var[r].first, serial_var[r].first)
          << "workers=" << workers << " r=" << r;
      ASSERT_EQ(pooled_var[r].second, serial_var[r].second)
          << "workers=" << workers << " r=" << r;
    }
  }
}

TEST(GpSparseTest, InducingSelectionIsDeterministicAndTargetFree) {
  const GpData d = make_data(220, 5, 1, 19);
  GpRegressor a = sparse_gp(24);
  a.fit(d.x, d.y);
  // Same inputs with a different target must select the same inducing set
  // (selection depends on X only) — the property predict_means_pair's
  // shared panel rests on.
  std::vector<double> y2(d.y);
  for (double& v : y2) v = 2.5 * v - 1.0;
  GpRegressor b = sparse_gp(24);
  b.fit(d.x, y2);
  ASSERT_EQ(a.inducing_indices().size(), b.inducing_indices().size());
  for (std::size_t i = 0; i < a.inducing_indices().size(); ++i)
    EXPECT_EQ(a.inducing_indices()[i], b.inducing_indices()[i]) << i;
  // Refitting the same model reproduces the weights bitwise.
  GpRegressor c = sparse_gp(24);
  c.fit(d.x, d.y);
  ASSERT_EQ(a.alpha().size(), c.alpha().size());
  for (std::size_t i = 0; i < a.alpha().size(); ++i)
    EXPECT_EQ(a.alpha()[i], c.alpha()[i]) << i;
}

// The counter-based no-refit proof: a sparse fit builds one cross panel and
// one inducing panel; update() builds none.
TEST(GpSparseTest, DistanceBuildAccounting) {
  const GpData d = make_data(150, 5, 1, 13);
  GpRegressor gp = sparse_gp(20);
  gp.fit(d.x, d.y);
  EXPECT_EQ(gp.distance_builds().full, 0u);
  EXPECT_EQ(gp.distance_builds().cross, 1u);
  EXPECT_EQ(gp.distance_builds().inducing, 1u);
  EXPECT_EQ(gp.distance_matrix_builds(), 2u);
  for (int i = 0; i < 4; ++i)
    gp.update(query_row(d.queries, 0), 0.25 * i);
  EXPECT_EQ(gp.updates_applied(), 4u);
  EXPECT_EQ(gp.distance_matrix_builds(), 2u) << "update() must not refit";
  // Refit resets both the build counters and the update count.
  gp.fit(d.x, d.y);
  EXPECT_EQ(gp.distance_matrix_builds(), 2u);
  EXPECT_EQ(gp.updates_applied(), 0u);
  // The exact backend still reports its single full build.
  GpRegressor exact;
  exact.fit(d.x, d.y);
  EXPECT_EQ(exact.distance_builds().full, 1u);
  EXPECT_EQ(exact.distance_builds().cross, 0u);
  EXPECT_EQ(exact.distance_matrix_builds(), 1u);
}

// Rank-1 update parity: after k sequential updates the weights must match
// a naive from-scratch rebuild of A = nv K_mm + K_mn K_nm and b = K_mn yc
// over the full (original + streamed) observation set, holding the fitted
// inducing set / scaler / target mean frozen exactly as update() does.
TEST(GpSparseTest, SequentialUpdatesMatchNaiveRebuild) {
  const GpData d = make_data(200, 5, 40, 23);
  GpRegressor gp = sparse_gp(32);
  gp.fit(d.x, d.y);

  Rng rng(29);
  Matrix xu(6, d.x.cols());
  std::vector<double> yu;
  for (std::size_t r = 0; r < xu.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < xu.cols(); ++c) {
      xu(r, c) = rng.uniform(-2.0, 2.0);
      s += xu(r, c);
    }
    yu.push_back(std::sin(s));
    gp.update(query_row(xu, r), yu.back());
  }
  EXPECT_EQ(gp.updates_applied(), xu.rows());

  // Naive reference from the fitted state's accessors.
  const GpHyperParams hp = gp.hyper_params();
  const Matrix& z = gp.train_inputs();  // standardized inducing rows
  const std::size_t m = z.rows();
  const Matrix xs = gp.input_scaler().transform(d.x);
  const Matrix xus = gp.input_scaler().transform(xu);
  Matrix a(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      a(i, j) = hp.noise_variance * rbf(hp, z.row(i), z.row(j));
  std::vector<double> b(m, 0.0);
  const auto accumulate = [&](std::span<const double> row, double target) {
    std::vector<double> k(m);
    for (std::size_t j = 0; j < m; ++j) k[j] = rbf(hp, row, z.row(j));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) a(i, j) += k[i] * k[j];
      b[i] += k[i] * (target - gp.target_mean());
    }
  };
  for (std::size_t r = 0; r < xs.rows(); ++r) accumulate(xs.row(r), d.y[r]);
  for (std::size_t r = 0; r < xus.rows(); ++r) accumulate(xus.row(r), yu[r]);
  const Cholesky chol(a);
  const std::vector<double> w_ref = chol.solve(b);

  ASSERT_EQ(gp.alpha().size(), w_ref.size());
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_NEAR(gp.alpha()[i], w_ref[i],
                1e-8 * std::max(1.0, std::abs(w_ref[i])))
        << i;
  // Predictive means agree with the reference weights to 1e-8.
  const std::vector<double> mu = gp.predict_batch(d.queries);
  const Matrix qs = gp.input_scaler().transform(d.queries);
  for (std::size_t r = 0; r < qs.rows(); ++r) {
    double ref = gp.target_mean();
    for (std::size_t j = 0; j < m; ++j)
      ref += rbf(hp, qs.row(r), z.row(j)) * w_ref[j];
    EXPECT_NEAR(mu[r], ref, 1e-8 * std::max(1.0, std::abs(ref))) << r;
  }
}

TEST(GpSparseTest, UpdatedModelBatchStaysBitIdenticalAcrossThreads) {
  const GpData d = make_data(180, 5, 70, 31);
  GpRegressor gp = sparse_gp(24);
  gp.fit(d.x, d.y);
  gp.update(query_row(d.queries, 0), 0.5);
  gp.update(query_row(d.queries, 1), -0.25);
  const std::vector<double> serial = gp.predict_batch(d.queries, nullptr);
  for (const std::size_t workers : {1u, 7u}) {
    ThreadPool pool(workers);
    const std::vector<double> pooled = gp.predict_batch(d.queries, &pool);
    for (std::size_t r = 0; r < serial.size(); ++r)
      ASSERT_EQ(pooled[r], serial[r]) << "workers=" << workers << " r=" << r;
  }
}

TEST(GpSparseTest, UpdateContractViolations) {
  GpRegressor unfitted = sparse_gp(16);
  EXPECT_THROW(unfitted.update(std::vector<double>(3, 0.0), 1.0),
               ContractViolation);
  const GpData d = make_data(50, 3, 1, 37);
  GpRegressor exact;
  exact.fit(d.x, d.y);
  EXPECT_FALSE(exact.supports_update());
  EXPECT_THROW(exact.update(query_row(d.x, 0), 1.0), ContractViolation);
  GpRegressor sparse = sparse_gp(16);
  sparse.fit(d.x, d.y);
  EXPECT_TRUE(sparse.supports_update());
  EXPECT_THROW(sparse.update(std::vector<double>(5, 0.0), 1.0),
               ContractViolation);
}

TEST(GpSparseTest, SmallTrainingSetUsesEveryRow) {
  const GpData d = make_data(12, 4, 8, 41);
  GpRegressor gp = sparse_gp(64);
  gp.fit(d.x, d.y);
  EXPECT_EQ(gp.inducing_count(), 12u);
  ASSERT_EQ(gp.inducing_indices().size(), 12u);
  for (const double mu : gp.predict_batch(d.queries))
    EXPECT_TRUE(std::isfinite(mu));
}

TEST(GpSparseTest, PairedMeansMatchIndividualBatches) {
  const GpData d = make_data(240, 6, 120, 43);
  std::vector<double> y2(d.y);
  for (double& v : y2) v = -3.0 * v + 0.5;
  GpRegressor a = sparse_gp(28);
  GpRegressor b = sparse_gp(28);
  a.fit(d.x, d.y);
  b.fit(d.x, y2);
  EXPECT_EQ(a.training_fingerprint(), b.training_fingerprint());
  const std::vector<double> ref_a = a.predict_batch(d.queries);
  const std::vector<double> ref_b = b.predict_batch(d.queries);
  std::vector<double> mu_a(d.queries.rows());
  std::vector<double> mu_b(d.queries.rows());
  ThreadPool pool(3);
  GpRegressor::predict_means_pair(a, b, d.queries.data().data(),
                                  d.queries.rows(), mu_a.data(), mu_b.data(),
                                  &pool);
  for (std::size_t r = 0; r < mu_a.size(); ++r) {
    ASSERT_EQ(mu_a[r], ref_a[r]) << r;
    ASSERT_EQ(mu_b[r], ref_b[r]) << r;
  }
}

#if !defined(NDEBUG) || defined(YOSO_ENABLE_DCHECKS)
// Same shape, different training inputs: the shape REQUIRE passes but the
// fingerprint DCHECK must trip.
TEST(GpSparseTest, PairFingerprintMismatchTripsContract) {
  const GpData d1 = make_data(80, 4, 5, 47);
  const GpData d2 = make_data(80, 4, 5, 53);
  GpRegressor a;
  GpRegressor b;
  a.fit(d1.x, d1.y);
  b.fit(d2.x, d2.y);
  EXPECT_NE(a.training_fingerprint(), b.training_fingerprint());
  std::vector<double> mu_a(d1.queries.rows());
  std::vector<double> mu_b(d1.queries.rows());
  EXPECT_THROW(
      GpRegressor::predict_means_pair(a, b, d1.queries.data().data(),
                                      d1.queries.rows(), mu_a.data(),
                                      mu_b.data(), nullptr),
      ContractViolation);
}
#endif

// Exact-vs-sparse accuracy on a seeded simulator sample set: the sparse
// model predicts log-latency on held-out draws within a modest factor of
// the exact model's RMSE.
TEST(GpSparseTest, SparseRmseNearExactOnSimulatorSamples) {
  const NetworkSkeleton skeleton = default_skeleton();
  const SystolicSimulator simulator(TechnologyParams{},
                                    SimFidelity::kAnalytical);
  const ConfigSpace space = default_config_space();
  Rng rng(61);
  const auto samples = collect_samples(260, simulator, space, skeleton, rng);
  const std::size_t train_n = 200;
  const std::size_t dim =
      codesign_features(samples[0].genotype, samples[0].config, skeleton)
          .size();
  Matrix x(train_n, dim);
  std::vector<double> y;
  for (std::size_t i = 0; i < train_n; ++i) {
    const auto f =
        codesign_features(samples[i].genotype, samples[i].config, skeleton);
    for (std::size_t c = 0; c < dim; ++c) x(i, c) = f[c];
    y.push_back(std::log(std::max(samples[i].latency_ms, 1e-9)));
  }
  GpRegressor exact;
  GpRegressor sparse = sparse_gp(96);
  exact.fit(x, y);
  sparse.fit(x, y);

  double se_exact = 0.0;
  double se_sparse = 0.0;
  const std::size_t held = samples.size() - train_n;
  for (std::size_t i = train_n; i < samples.size(); ++i) {
    const auto f =
        codesign_features(samples[i].genotype, samples[i].config, skeleton);
    const double truth = std::log(std::max(samples[i].latency_ms, 1e-9));
    const double de = exact.predict(f) - truth;
    const double ds = sparse.predict(f) - truth;
    se_exact += de * de;
    se_sparse += ds * ds;
  }
  const double rmse_exact = std::sqrt(se_exact / static_cast<double>(held));
  const double rmse_sparse = std::sqrt(se_sparse / static_cast<double>(held));
  // Loose unit-test bound (the calibrated 5%-relative gate lives in
  // bench_gp_sparse where n/m matches the paper-scale setting).
  EXPECT_LE(rmse_sparse, 1.5 * rmse_exact + 0.05)
      << "exact rmse " << rmse_exact << " sparse rmse " << rmse_sparse;
}

}  // namespace
}  // namespace yoso
