// Runtime behaviour of the annotated synchronization primitives
// (base/thread_annotations.h).  The compile-time half of the contract —
// -Wthread-safety rejecting unguarded access — is exercised by the
// clang-gated `tsa.negative` ctest; here we pin down that the wrappers
// actually exclude, wake and compose correctly at runtime.

#include "base/thread_annotations.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace yoso {
namespace {

TEST(SynchronizedTest, WithLockReturnsFunctionResult) {
  Synchronized<int> value(41);
  const int out = value.with_lock([](int& v) { return ++v; });
  EXPECT_EQ(out, 42);
  EXPECT_EQ(value.load(), 42);
}

TEST(SynchronizedTest, ConstWithLockSeesConstValue) {
  const Synchronized<std::string> value(std::string("abc"));
  const std::size_t n =
      value.with_lock([](const std::string& s) { return s.size(); });
  EXPECT_EQ(n, 3u);
}

TEST(SynchronizedTest, StoreReplacesValue) {
  Synchronized<std::vector<int>> value;
  value.store({1, 2, 3});
  EXPECT_EQ(value.load().size(), 3u);
}

TEST(SynchronizedTest, ConcurrentIncrementsAreNotLost) {
  Synchronized<long> counter(0);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i)
        counter.with_lock([](long& v) { ++v; });
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kIncrements);
}

TEST(SynchronizedTest, VoidReturningFunctionCompiles) {
  Synchronized<int> value(1);
  value.with_lock([](int& v) { v = 7; });
  EXPECT_EQ(value.load(), 7);
}

TEST(MutexTest, MutexLockExcludes) {
  Mutex mu;
  int shared = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++shared;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, WaitBlocksUntilNotified) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;

  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });

  {
    MutexLock lock(mu);
    while (!ready) mu.wait(cv);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(MutexTest, WaitReleasesTheMutexWhileBlocked) {
  // If Mutex::wait failed to release the lock, the producer below could
  // never acquire it to flip `ready` and the wait would hang: this test
  // completing at all is the assertion.
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  int producer_side_effect = 0;

  std::thread producer([&] {
    MutexLock lock(mu);  // only acquirable while the waiter sits in wait()
    ready = true;
    producer_side_effect = 1;
    cv.notify_one();
  });

  {
    MutexLock lock(mu);
    while (!ready) mu.wait(cv);
  }
  producer.join();
  EXPECT_EQ(producer_side_effect, 1);
}

TEST(ThreadRoleTest, GuardIsANoOpAtRuntime) {
  // The role is a compile-time-only capability: guards nest and interleave
  // freely with zero runtime effect.
  ThreadRole role;
  ThreadRoleGuard outer(role);
  {
    ThreadRoleGuard inner(role);
  }
  SUCCEED();
}

TEST(ThreadPoolErrorTest, LowestIndexExceptionStillWinsAfterRefactor) {
  // The error slot moved into a Synchronized<ErrorSlot>; the contract —
  // rethrow the exception a serial loop would have thrown first — must
  // survive the change.
  ThreadPool pool(3);
  try {
    pool.parallel_for(0, 64, [](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

}  // namespace
}  // namespace yoso
