file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_predictors.dir/bench_fig4_predictors.cpp.o"
  "CMakeFiles/bench_fig4_predictors.dir/bench_fig4_predictors.cpp.o.d"
  "bench_fig4_predictors"
  "bench_fig4_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
