file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_baseline.dir/bench_ablation_baseline.cpp.o"
  "CMakeFiles/bench_ablation_baseline.dir/bench_ablation_baseline.cpp.o.d"
  "bench_ablation_baseline"
  "bench_ablation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
