file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_rl_vs_random.dir/bench_fig6a_rl_vs_random.cpp.o"
  "CMakeFiles/bench_fig6a_rl_vs_random.dir/bench_fig6a_rl_vs_random.cpp.o.d"
  "bench_fig6a_rl_vs_random"
  "bench_fig6a_rl_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_rl_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
