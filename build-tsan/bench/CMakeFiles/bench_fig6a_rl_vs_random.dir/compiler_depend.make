# Empty compiler generated dependencies file for bench_fig6a_rl_vs_random.
# This may be replaced when dependencies are built.
