# Empty compiler generated dependencies file for bench_ablation_searchers.
# This may be replaced when dependencies are built.
