file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_searchers.dir/bench_ablation_searchers.cpp.o"
  "CMakeFiles/bench_ablation_searchers.dir/bench_ablation_searchers.cpp.o.d"
  "bench_ablation_searchers"
  "bench_ablation_searchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_searchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
