# Empty dependencies file for bench_fig6b_energy_tradeoff.
# This may be replaced when dependencies are built.
