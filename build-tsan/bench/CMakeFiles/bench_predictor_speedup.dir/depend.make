# Empty dependencies file for bench_predictor_speedup.
# This may be replaced when dependencies are built.
