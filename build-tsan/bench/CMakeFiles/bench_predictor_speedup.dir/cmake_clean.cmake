file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_speedup.dir/bench_predictor_speedup.cpp.o"
  "CMakeFiles/bench_predictor_speedup.dir/bench_predictor_speedup.cpp.o.d"
  "bench_predictor_speedup"
  "bench_predictor_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
