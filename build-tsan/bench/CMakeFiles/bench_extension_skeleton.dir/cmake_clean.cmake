file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_skeleton.dir/bench_extension_skeleton.cpp.o"
  "CMakeFiles/bench_extension_skeleton.dir/bench_extension_skeleton.cpp.o.d"
  "bench_extension_skeleton"
  "bench_extension_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
