# Empty dependencies file for bench_extension_skeleton.
# This may be replaced when dependencies are built.
