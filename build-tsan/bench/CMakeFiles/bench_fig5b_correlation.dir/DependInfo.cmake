
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5b_correlation.cpp" "bench/CMakeFiles/bench_fig5b_correlation.dir/bench_fig5b_correlation.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5b_correlation.dir/bench_fig5b_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/yoso_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rl/CMakeFiles/yoso_rl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predictor/CMakeFiles/yoso_predictor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/surrogate/CMakeFiles/yoso_surrogate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/yoso_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/accel/CMakeFiles/yoso_accel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/yoso_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
