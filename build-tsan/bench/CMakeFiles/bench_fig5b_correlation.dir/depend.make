# Empty dependencies file for bench_fig5b_correlation.
# This may be replaced when dependencies are built.
