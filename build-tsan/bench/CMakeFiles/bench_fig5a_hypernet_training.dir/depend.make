# Empty dependencies file for bench_fig5a_hypernet_training.
# This may be replaced when dependencies are built.
