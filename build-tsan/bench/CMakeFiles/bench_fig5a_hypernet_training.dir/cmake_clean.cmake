file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_hypernet_training.dir/bench_fig5a_hypernet_training.cpp.o"
  "CMakeFiles/bench_fig5a_hypernet_training.dir/bench_fig5a_hypernet_training.cpp.o.d"
  "bench_fig5a_hypernet_training"
  "bench_fig5a_hypernet_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_hypernet_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
