# Empty compiler generated dependencies file for bench_fig6c_latency_tradeoff.
# This may be replaced when dependencies are built.
