# Empty dependencies file for bench_ablation_predictor_in_loop.
# This may be replaced when dependencies are built.
