file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_predictor_in_loop.dir/bench_ablation_predictor_in_loop.cpp.o"
  "CMakeFiles/bench_ablation_predictor_in_loop.dir/bench_ablation_predictor_in_loop.cpp.o.d"
  "bench_ablation_predictor_in_loop"
  "bench_ablation_predictor_in_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_predictor_in_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
