file(REMOVE_RECURSE
  "CMakeFiles/codesign_latency.dir/codesign_latency.cpp.o"
  "CMakeFiles/codesign_latency.dir/codesign_latency.cpp.o.d"
  "codesign_latency"
  "codesign_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
