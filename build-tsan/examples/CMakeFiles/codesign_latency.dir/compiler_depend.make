# Empty compiler generated dependencies file for codesign_latency.
# This may be replaced when dependencies are built.
