file(REMOVE_RECURSE
  "CMakeFiles/codesign_energy.dir/codesign_energy.cpp.o"
  "CMakeFiles/codesign_energy.dir/codesign_energy.cpp.o.d"
  "codesign_energy"
  "codesign_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
