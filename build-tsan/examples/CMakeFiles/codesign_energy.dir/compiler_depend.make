# Empty compiler generated dependencies file for codesign_energy.
# This may be replaced when dependencies are built.
