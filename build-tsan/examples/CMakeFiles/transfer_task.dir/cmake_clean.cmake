file(REMOVE_RECURSE
  "CMakeFiles/transfer_task.dir/transfer_task.cpp.o"
  "CMakeFiles/transfer_task.dir/transfer_task.cpp.o.d"
  "transfer_task"
  "transfer_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
