# Empty compiler generated dependencies file for transfer_task.
# This may be replaced when dependencies are built.
