# Empty compiler generated dependencies file for train_hypernet.
# This may be replaced when dependencies are built.
