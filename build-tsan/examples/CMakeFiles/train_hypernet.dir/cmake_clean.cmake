file(REMOVE_RECURSE
  "CMakeFiles/train_hypernet.dir/train_hypernet.cpp.o"
  "CMakeFiles/train_hypernet.dir/train_hypernet.cpp.o.d"
  "train_hypernet"
  "train_hypernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_hypernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
