# Empty compiler generated dependencies file for inspect_design.
# This may be replaced when dependencies are built.
