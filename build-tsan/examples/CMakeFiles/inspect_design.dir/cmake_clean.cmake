file(REMOVE_RECURSE
  "CMakeFiles/inspect_design.dir/inspect_design.cpp.o"
  "CMakeFiles/inspect_design.dir/inspect_design.cpp.o.d"
  "inspect_design"
  "inspect_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
