# Empty compiler generated dependencies file for yoso_cli.
# This may be replaced when dependencies are built.
