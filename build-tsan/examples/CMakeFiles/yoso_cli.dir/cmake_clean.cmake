file(REMOVE_RECURSE
  "CMakeFiles/yoso_cli.dir/yoso_cli.cpp.o"
  "CMakeFiles/yoso_cli.dir/yoso_cli.cpp.o.d"
  "yoso_cli"
  "yoso_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
