# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_arch[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_accel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nn[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_predictor[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_rl[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
