
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cell.cpp" "tests/CMakeFiles/test_nn.dir/test_cell.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_cell.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/test_nn.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_im2col.cpp" "tests/CMakeFiles/test_nn.dir/test_im2col.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_im2col.cpp.o.d"
  "/root/repo/tests/test_layers_nn.cpp" "tests/CMakeFiles/test_nn.dir/test_layers_nn.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_layers_nn.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/test_nn.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/test_nn.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_pathnetwork.cpp" "tests/CMakeFiles/test_nn.dir/test_pathnetwork.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_pathnetwork.cpp.o.d"
  "/root/repo/tests/test_quantize.cpp" "tests/CMakeFiles/test_nn.dir/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_quantize.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/test_nn.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_trainer.cpp" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/yoso_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rl/CMakeFiles/yoso_rl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predictor/CMakeFiles/yoso_predictor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/surrogate/CMakeFiles/yoso_surrogate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/yoso_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/accel/CMakeFiles/yoso_accel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/yoso_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
