file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_cell.cpp.o"
  "CMakeFiles/test_nn.dir/test_cell.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_dataset.cpp.o"
  "CMakeFiles/test_nn.dir/test_dataset.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_im2col.cpp.o"
  "CMakeFiles/test_nn.dir/test_im2col.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_layers_nn.cpp.o"
  "CMakeFiles/test_nn.dir/test_layers_nn.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_metrics.cpp.o"
  "CMakeFiles/test_nn.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_pathnetwork.cpp.o"
  "CMakeFiles/test_nn.dir/test_pathnetwork.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_quantize.cpp.o"
  "CMakeFiles/test_nn.dir/test_quantize.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_tensor.cpp.o"
  "CMakeFiles/test_nn.dir/test_tensor.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
