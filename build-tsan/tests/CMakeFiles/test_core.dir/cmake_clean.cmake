file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_alt_search.cpp.o"
  "CMakeFiles/test_core.dir/test_alt_search.cpp.o.d"
  "CMakeFiles/test_core.dir/test_design_space.cpp.o"
  "CMakeFiles/test_core.dir/test_design_space.cpp.o.d"
  "CMakeFiles/test_core.dir/test_evaluator.cpp.o"
  "CMakeFiles/test_core.dir/test_evaluator.cpp.o.d"
  "CMakeFiles/test_core.dir/test_extended_space.cpp.o"
  "CMakeFiles/test_core.dir/test_extended_space.cpp.o.d"
  "CMakeFiles/test_core.dir/test_integration.cpp.o"
  "CMakeFiles/test_core.dir/test_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/test_parallel_search.cpp.o"
  "CMakeFiles/test_core.dir/test_parallel_search.cpp.o.d"
  "CMakeFiles/test_core.dir/test_pareto.cpp.o"
  "CMakeFiles/test_core.dir/test_pareto.cpp.o.d"
  "CMakeFiles/test_core.dir/test_report.cpp.o"
  "CMakeFiles/test_core.dir/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/test_reward.cpp.o"
  "CMakeFiles/test_core.dir/test_reward.cpp.o.d"
  "CMakeFiles/test_core.dir/test_search.cpp.o"
  "CMakeFiles/test_core.dir/test_search.cpp.o.d"
  "CMakeFiles/test_core.dir/test_serialize.cpp.o"
  "CMakeFiles/test_core.dir/test_serialize.cpp.o.d"
  "CMakeFiles/test_core.dir/test_space_statistics.cpp.o"
  "CMakeFiles/test_core.dir/test_space_statistics.cpp.o.d"
  "CMakeFiles/test_core.dir/test_trace_io.cpp.o"
  "CMakeFiles/test_core.dir/test_trace_io.cpp.o.d"
  "CMakeFiles/test_core.dir/test_two_stage.cpp.o"
  "CMakeFiles/test_core.dir/test_two_stage.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
