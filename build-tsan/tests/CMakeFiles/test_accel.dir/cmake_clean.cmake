file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/test_accel_config.cpp.o"
  "CMakeFiles/test_accel.dir/test_accel_config.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_area.cpp.o"
  "CMakeFiles/test_accel.dir/test_area.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_batch_mode.cpp.o"
  "CMakeFiles/test_accel.dir/test_batch_mode.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_mapping.cpp.o"
  "CMakeFiles/test_accel.dir/test_mapping.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_roofline.cpp.o"
  "CMakeFiles/test_accel.dir/test_roofline.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_rtl_export.cpp.o"
  "CMakeFiles/test_accel.dir/test_rtl_export.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_simulator.cpp.o"
  "CMakeFiles/test_accel.dir/test_simulator.cpp.o.d"
  "CMakeFiles/test_accel.dir/test_simulator_properties.cpp.o"
  "CMakeFiles/test_accel.dir/test_simulator_properties.cpp.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
