file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/test_encoding.cpp.o"
  "CMakeFiles/test_arch.dir/test_encoding.cpp.o.d"
  "CMakeFiles/test_arch.dir/test_genotype.cpp.o"
  "CMakeFiles/test_arch.dir/test_genotype.cpp.o.d"
  "CMakeFiles/test_arch.dir/test_network_arch.cpp.o"
  "CMakeFiles/test_arch.dir/test_network_arch.cpp.o.d"
  "CMakeFiles/test_arch.dir/test_ops.cpp.o"
  "CMakeFiles/test_arch.dir/test_ops.cpp.o.d"
  "CMakeFiles/test_arch.dir/test_zoo.cpp.o"
  "CMakeFiles/test_arch.dir/test_zoo.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
