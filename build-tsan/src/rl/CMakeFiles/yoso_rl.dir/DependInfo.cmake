
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/controller.cpp" "src/rl/CMakeFiles/yoso_rl.dir/controller.cpp.o" "gcc" "src/rl/CMakeFiles/yoso_rl.dir/controller.cpp.o.d"
  "/root/repo/src/rl/param_store.cpp" "src/rl/CMakeFiles/yoso_rl.dir/param_store.cpp.o" "gcc" "src/rl/CMakeFiles/yoso_rl.dir/param_store.cpp.o.d"
  "/root/repo/src/rl/reinforce.cpp" "src/rl/CMakeFiles/yoso_rl.dir/reinforce.cpp.o" "gcc" "src/rl/CMakeFiles/yoso_rl.dir/reinforce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
