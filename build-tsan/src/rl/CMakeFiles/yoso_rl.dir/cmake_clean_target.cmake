file(REMOVE_RECURSE
  "libyoso_rl.a"
)
