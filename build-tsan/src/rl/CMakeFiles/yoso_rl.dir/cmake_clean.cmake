file(REMOVE_RECURSE
  "CMakeFiles/yoso_rl.dir/controller.cpp.o"
  "CMakeFiles/yoso_rl.dir/controller.cpp.o.d"
  "CMakeFiles/yoso_rl.dir/param_store.cpp.o"
  "CMakeFiles/yoso_rl.dir/param_store.cpp.o.d"
  "CMakeFiles/yoso_rl.dir/reinforce.cpp.o"
  "CMakeFiles/yoso_rl.dir/reinforce.cpp.o.d"
  "libyoso_rl.a"
  "libyoso_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
