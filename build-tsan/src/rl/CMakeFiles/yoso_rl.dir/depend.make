# Empty dependencies file for yoso_rl.
# This may be replaced when dependencies are built.
