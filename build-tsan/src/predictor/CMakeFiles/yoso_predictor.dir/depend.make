# Empty dependencies file for yoso_predictor.
# This may be replaced when dependencies are built.
