
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/gp.cpp" "src/predictor/CMakeFiles/yoso_predictor.dir/gp.cpp.o" "gcc" "src/predictor/CMakeFiles/yoso_predictor.dir/gp.cpp.o.d"
  "/root/repo/src/predictor/models.cpp" "src/predictor/CMakeFiles/yoso_predictor.dir/models.cpp.o" "gcc" "src/predictor/CMakeFiles/yoso_predictor.dir/models.cpp.o.d"
  "/root/repo/src/predictor/perf_predictor.cpp" "src/predictor/CMakeFiles/yoso_predictor.dir/perf_predictor.cpp.o" "gcc" "src/predictor/CMakeFiles/yoso_predictor.dir/perf_predictor.cpp.o.d"
  "/root/repo/src/predictor/regressor.cpp" "src/predictor/CMakeFiles/yoso_predictor.dir/regressor.cpp.o" "gcc" "src/predictor/CMakeFiles/yoso_predictor.dir/regressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/yoso_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/accel/CMakeFiles/yoso_accel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/surrogate/CMakeFiles/yoso_surrogate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
