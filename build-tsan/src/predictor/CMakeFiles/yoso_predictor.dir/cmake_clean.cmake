file(REMOVE_RECURSE
  "CMakeFiles/yoso_predictor.dir/gp.cpp.o"
  "CMakeFiles/yoso_predictor.dir/gp.cpp.o.d"
  "CMakeFiles/yoso_predictor.dir/models.cpp.o"
  "CMakeFiles/yoso_predictor.dir/models.cpp.o.d"
  "CMakeFiles/yoso_predictor.dir/perf_predictor.cpp.o"
  "CMakeFiles/yoso_predictor.dir/perf_predictor.cpp.o.d"
  "CMakeFiles/yoso_predictor.dir/regressor.cpp.o"
  "CMakeFiles/yoso_predictor.dir/regressor.cpp.o.d"
  "libyoso_predictor.a"
  "libyoso_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
