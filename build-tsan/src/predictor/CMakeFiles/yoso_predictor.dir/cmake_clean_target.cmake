file(REMOVE_RECURSE
  "libyoso_predictor.a"
)
