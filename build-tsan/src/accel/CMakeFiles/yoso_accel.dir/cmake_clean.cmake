file(REMOVE_RECURSE
  "CMakeFiles/yoso_accel.dir/area.cpp.o"
  "CMakeFiles/yoso_accel.dir/area.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/config.cpp.o"
  "CMakeFiles/yoso_accel.dir/config.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/mapping.cpp.o"
  "CMakeFiles/yoso_accel.dir/mapping.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/roofline.cpp.o"
  "CMakeFiles/yoso_accel.dir/roofline.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/rtl_export.cpp.o"
  "CMakeFiles/yoso_accel.dir/rtl_export.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/simulator.cpp.o"
  "CMakeFiles/yoso_accel.dir/simulator.cpp.o.d"
  "CMakeFiles/yoso_accel.dir/tech.cpp.o"
  "CMakeFiles/yoso_accel.dir/tech.cpp.o.d"
  "libyoso_accel.a"
  "libyoso_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
