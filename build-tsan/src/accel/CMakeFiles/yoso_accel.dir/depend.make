# Empty dependencies file for yoso_accel.
# This may be replaced when dependencies are built.
