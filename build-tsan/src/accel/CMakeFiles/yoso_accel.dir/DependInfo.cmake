
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/area.cpp" "src/accel/CMakeFiles/yoso_accel.dir/area.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/area.cpp.o.d"
  "/root/repo/src/accel/config.cpp" "src/accel/CMakeFiles/yoso_accel.dir/config.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/config.cpp.o.d"
  "/root/repo/src/accel/mapping.cpp" "src/accel/CMakeFiles/yoso_accel.dir/mapping.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/mapping.cpp.o.d"
  "/root/repo/src/accel/roofline.cpp" "src/accel/CMakeFiles/yoso_accel.dir/roofline.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/roofline.cpp.o.d"
  "/root/repo/src/accel/rtl_export.cpp" "src/accel/CMakeFiles/yoso_accel.dir/rtl_export.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/rtl_export.cpp.o.d"
  "/root/repo/src/accel/simulator.cpp" "src/accel/CMakeFiles/yoso_accel.dir/simulator.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/simulator.cpp.o.d"
  "/root/repo/src/accel/tech.cpp" "src/accel/CMakeFiles/yoso_accel.dir/tech.cpp.o" "gcc" "src/accel/CMakeFiles/yoso_accel.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
