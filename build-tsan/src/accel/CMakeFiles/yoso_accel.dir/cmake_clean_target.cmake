file(REMOVE_RECURSE
  "libyoso_accel.a"
)
