# Empty dependencies file for yoso_core.
# This may be replaced when dependencies are built.
