file(REMOVE_RECURSE
  "libyoso_core.a"
)
