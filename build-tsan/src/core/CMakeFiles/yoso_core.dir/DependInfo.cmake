
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alt_search.cpp" "src/core/CMakeFiles/yoso_core.dir/alt_search.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/alt_search.cpp.o.d"
  "/root/repo/src/core/design_space.cpp" "src/core/CMakeFiles/yoso_core.dir/design_space.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/design_space.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/yoso_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/extended_space.cpp" "src/core/CMakeFiles/yoso_core.dir/extended_space.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/extended_space.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/yoso_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/yoso_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/report.cpp.o.d"
  "/root/repo/src/core/reward.cpp" "src/core/CMakeFiles/yoso_core.dir/reward.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/reward.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/yoso_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/search.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/yoso_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/yoso_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/trace_io.cpp.o.d"
  "/root/repo/src/core/two_stage.cpp" "src/core/CMakeFiles/yoso_core.dir/two_stage.cpp.o" "gcc" "src/core/CMakeFiles/yoso_core.dir/two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/accel/CMakeFiles/yoso_accel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/surrogate/CMakeFiles/yoso_surrogate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predictor/CMakeFiles/yoso_predictor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rl/CMakeFiles/yoso_rl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/yoso_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
