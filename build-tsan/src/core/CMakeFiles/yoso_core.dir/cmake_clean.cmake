file(REMOVE_RECURSE
  "CMakeFiles/yoso_core.dir/alt_search.cpp.o"
  "CMakeFiles/yoso_core.dir/alt_search.cpp.o.d"
  "CMakeFiles/yoso_core.dir/design_space.cpp.o"
  "CMakeFiles/yoso_core.dir/design_space.cpp.o.d"
  "CMakeFiles/yoso_core.dir/evaluator.cpp.o"
  "CMakeFiles/yoso_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/yoso_core.dir/extended_space.cpp.o"
  "CMakeFiles/yoso_core.dir/extended_space.cpp.o.d"
  "CMakeFiles/yoso_core.dir/pareto.cpp.o"
  "CMakeFiles/yoso_core.dir/pareto.cpp.o.d"
  "CMakeFiles/yoso_core.dir/report.cpp.o"
  "CMakeFiles/yoso_core.dir/report.cpp.o.d"
  "CMakeFiles/yoso_core.dir/reward.cpp.o"
  "CMakeFiles/yoso_core.dir/reward.cpp.o.d"
  "CMakeFiles/yoso_core.dir/search.cpp.o"
  "CMakeFiles/yoso_core.dir/search.cpp.o.d"
  "CMakeFiles/yoso_core.dir/serialize.cpp.o"
  "CMakeFiles/yoso_core.dir/serialize.cpp.o.d"
  "CMakeFiles/yoso_core.dir/trace_io.cpp.o"
  "CMakeFiles/yoso_core.dir/trace_io.cpp.o.d"
  "CMakeFiles/yoso_core.dir/two_stage.cpp.o"
  "CMakeFiles/yoso_core.dir/two_stage.cpp.o.d"
  "libyoso_core.a"
  "libyoso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
