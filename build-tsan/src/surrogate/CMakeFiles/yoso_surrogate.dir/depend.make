# Empty dependencies file for yoso_surrogate.
# This may be replaced when dependencies are built.
