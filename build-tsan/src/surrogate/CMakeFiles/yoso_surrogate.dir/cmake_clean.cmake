file(REMOVE_RECURSE
  "CMakeFiles/yoso_surrogate.dir/accuracy_model.cpp.o"
  "CMakeFiles/yoso_surrogate.dir/accuracy_model.cpp.o.d"
  "libyoso_surrogate.a"
  "libyoso_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
