file(REMOVE_RECURSE
  "libyoso_surrogate.a"
)
