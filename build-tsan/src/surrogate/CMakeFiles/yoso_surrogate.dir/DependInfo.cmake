
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surrogate/accuracy_model.cpp" "src/surrogate/CMakeFiles/yoso_surrogate.dir/accuracy_model.cpp.o" "gcc" "src/surrogate/CMakeFiles/yoso_surrogate.dir/accuracy_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
