file(REMOVE_RECURSE
  "libyoso_util.a"
)
