# Empty dependencies file for yoso_util.
# This may be replaced when dependencies are built.
