file(REMOVE_RECURSE
  "CMakeFiles/yoso_util.dir/env.cpp.o"
  "CMakeFiles/yoso_util.dir/env.cpp.o.d"
  "CMakeFiles/yoso_util.dir/rng.cpp.o"
  "CMakeFiles/yoso_util.dir/rng.cpp.o.d"
  "CMakeFiles/yoso_util.dir/stats.cpp.o"
  "CMakeFiles/yoso_util.dir/stats.cpp.o.d"
  "CMakeFiles/yoso_util.dir/table.cpp.o"
  "CMakeFiles/yoso_util.dir/table.cpp.o.d"
  "CMakeFiles/yoso_util.dir/thread_pool.cpp.o"
  "CMakeFiles/yoso_util.dir/thread_pool.cpp.o.d"
  "libyoso_util.a"
  "libyoso_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
