file(REMOVE_RECURSE
  "libyoso_linalg.a"
)
