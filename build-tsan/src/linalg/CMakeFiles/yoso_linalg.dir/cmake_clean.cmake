file(REMOVE_RECURSE
  "CMakeFiles/yoso_linalg.dir/matrix.cpp.o"
  "CMakeFiles/yoso_linalg.dir/matrix.cpp.o.d"
  "libyoso_linalg.a"
  "libyoso_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
