# Empty dependencies file for yoso_linalg.
# This may be replaced when dependencies are built.
