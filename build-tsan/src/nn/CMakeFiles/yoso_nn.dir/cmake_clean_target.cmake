file(REMOVE_RECURSE
  "libyoso_nn.a"
)
