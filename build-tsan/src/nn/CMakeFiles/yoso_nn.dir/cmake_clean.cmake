file(REMOVE_RECURSE
  "CMakeFiles/yoso_nn.dir/cell.cpp.o"
  "CMakeFiles/yoso_nn.dir/cell.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/dataset.cpp.o"
  "CMakeFiles/yoso_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/im2col.cpp.o"
  "CMakeFiles/yoso_nn.dir/im2col.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/layers.cpp.o"
  "CMakeFiles/yoso_nn.dir/layers.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/metrics.cpp.o"
  "CMakeFiles/yoso_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/network.cpp.o"
  "CMakeFiles/yoso_nn.dir/network.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/optimizer.cpp.o"
  "CMakeFiles/yoso_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/quantize.cpp.o"
  "CMakeFiles/yoso_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/tensor.cpp.o"
  "CMakeFiles/yoso_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/yoso_nn.dir/trainer.cpp.o"
  "CMakeFiles/yoso_nn.dir/trainer.cpp.o.d"
  "libyoso_nn.a"
  "libyoso_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
