
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cell.cpp" "src/nn/CMakeFiles/yoso_nn.dir/cell.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/cell.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/yoso_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/im2col.cpp" "src/nn/CMakeFiles/yoso_nn.dir/im2col.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/im2col.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/yoso_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/yoso_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/yoso_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/yoso_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/yoso_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/yoso_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/yoso_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/yoso_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
