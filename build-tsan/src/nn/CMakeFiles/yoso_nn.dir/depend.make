# Empty dependencies file for yoso_nn.
# This may be replaced when dependencies are built.
