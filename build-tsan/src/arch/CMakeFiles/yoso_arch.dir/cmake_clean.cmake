file(REMOVE_RECURSE
  "CMakeFiles/yoso_arch.dir/encoding.cpp.o"
  "CMakeFiles/yoso_arch.dir/encoding.cpp.o.d"
  "CMakeFiles/yoso_arch.dir/genotype.cpp.o"
  "CMakeFiles/yoso_arch.dir/genotype.cpp.o.d"
  "CMakeFiles/yoso_arch.dir/network.cpp.o"
  "CMakeFiles/yoso_arch.dir/network.cpp.o.d"
  "CMakeFiles/yoso_arch.dir/ops.cpp.o"
  "CMakeFiles/yoso_arch.dir/ops.cpp.o.d"
  "CMakeFiles/yoso_arch.dir/zoo.cpp.o"
  "CMakeFiles/yoso_arch.dir/zoo.cpp.o.d"
  "libyoso_arch.a"
  "libyoso_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
