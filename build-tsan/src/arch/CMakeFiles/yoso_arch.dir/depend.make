# Empty dependencies file for yoso_arch.
# This may be replaced when dependencies are built.
