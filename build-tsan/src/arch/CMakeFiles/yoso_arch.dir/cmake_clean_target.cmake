file(REMOVE_RECURSE
  "libyoso_arch.a"
)
