
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/encoding.cpp" "src/arch/CMakeFiles/yoso_arch.dir/encoding.cpp.o" "gcc" "src/arch/CMakeFiles/yoso_arch.dir/encoding.cpp.o.d"
  "/root/repo/src/arch/genotype.cpp" "src/arch/CMakeFiles/yoso_arch.dir/genotype.cpp.o" "gcc" "src/arch/CMakeFiles/yoso_arch.dir/genotype.cpp.o.d"
  "/root/repo/src/arch/network.cpp" "src/arch/CMakeFiles/yoso_arch.dir/network.cpp.o" "gcc" "src/arch/CMakeFiles/yoso_arch.dir/network.cpp.o.d"
  "/root/repo/src/arch/ops.cpp" "src/arch/CMakeFiles/yoso_arch.dir/ops.cpp.o" "gcc" "src/arch/CMakeFiles/yoso_arch.dir/ops.cpp.o.d"
  "/root/repo/src/arch/zoo.cpp" "src/arch/CMakeFiles/yoso_arch.dir/zoo.cpp.o" "gcc" "src/arch/CMakeFiles/yoso_arch.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
